"""Cost model of the fused sampled dimension tree (replay + three-way crossover).

The fused kernel of :mod:`repro.core.sampled_dimtree` counts every cost
component as it executes; this module replays the same schedule
*symbolically* — the tree's lazy parent-node maintenance under the ALS update
order, the sampler cache's per-factor rebuild schedule, and the per-call
draw/estimator terms — so the modelled steady-state sweep equals the
kernel's counted ledger exactly (the tests assert ``==``, continuing the
discipline of :mod:`repro.costmodel.dimtree_model`).

The only data-dependent sizes are the per-call *distinct* draw counts, which
the caller passes in (taken from the kernel's
:class:`~repro.core.sampled_dimtree.FusedDrawRecord` log for reconciliation,
or capped at the draw count for a priori modelling).  Everything else —
which partials are recomputed, which sampler trees rebuild, how many node
Grams each descent reads — is determined by ``(shape, rank, split,
n_draws)`` alone.

:func:`three_way_crossover` puts the three sweep engines side by side —
exact ``"dimtree"``, per-call ``"sampled-tree"``, and the fused
``"sampled-dimtree"`` — as a function of draw count and rank.  The fused
kernel occupies a *window*: against the per-call sampled baseline it
amortizes the sampler builds and replaces raw-fiber gathers with cached
partials (a fixed root-contraction cost that pays off as draws grow), while
against the exact tree its sampled leaf evaluation wins only while the
distinct draw count stays below the free-mode extent it replaces.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.dimtree import (
    _STEADY_SWEEPS,
    ModeSplit,
    _build_parents,
    _step_cost,
    split_half,
)
from repro.core.sampled_dimtree import (
    FusedSweepCost,
    sampler_build_cost,
    tree_draw_cost,
)
from repro.costmodel.dimtree_model import dimtree_sweep_flops, dimtree_sweep_words
from repro.exceptions import ParameterError
from repro.utils.validation import check_positive_int, check_rank, check_shape

__all__ = [
    "sampled_dimtree_sweep_cost",
    "sampled_tree_sweep_cost",
    "expected_distinct_rows",
    "three_way_crossover",
]


def _check_distinct(distinct_rows: Sequence[int], n_modes: int) -> List[int]:
    distinct = [int(u) for u in distinct_rows]
    if len(distinct) != n_modes:
        raise ParameterError(
            f"distinct_rows must give one count per mode ({n_modes}), "
            f"got {len(distinct)}"
        )
    if any(u < 0 for u in distinct):
        raise ParameterError("distinct_rows must be non-negative")
    return distinct


def _eval_terms(
    out_extent: int, rank: int, n_free: int, distinct: int, has_rank: bool
) -> Tuple[int, int]:
    """(flops, words) of the estimator on ``distinct`` rows — the counted convention."""
    flops = (
        max(n_free - 1, 0) * distinct * rank
        + distinct * rank
        + 2 * out_extent * distinct * rank
    )
    words = (
        distinct * out_extent * (rank if has_rank else 1)
        + distinct * n_free * rank
        + out_extent * rank
    )
    return flops, words


def sampled_dimtree_sweep_cost(
    shape: Sequence[int],
    rank: int,
    n_draws: int,
    distinct_rows: Sequence[int],
    *,
    distribution: str = "tree-leverage",
    split: Optional[ModeSplit] = None,
    first_sweep: bool = False,
) -> FusedSweepCost:
    """Counted cost of one ALS sweep of the fused kernel, replayed symbolically.

    Replays the exact schedule of
    :class:`~repro.core.sampled_dimtree.SampledDimtreeKernel` under the ALS
    update order (mode ``0..N-1``, each factor replaced and exact-invalidated
    after its solve): the lazy maintenance of each leaf's *parent* node, the
    per-factor sampler rebuilds, and the per-call draw and estimator terms.
    ``distinct_rows[m]`` is the distinct draw count of mode ``m``'s call in
    the costed sweep (from the kernel's draw log, or a model cap); all other
    terms are schedule-determined, so the result equals the kernel's counted
    steady-state (or ``first_sweep``) per-sweep ledger exactly.
    """
    shape = check_shape(shape, min_ndim=2)
    rank = check_rank(rank)
    n_draws = check_positive_int(n_draws, "n_draws")
    n_modes = len(shape)
    distinct = _check_distinct(distinct_rows, n_modes)
    split = split if split is not None else split_half
    parents = _build_parents(n_modes, split)
    root_key = tuple(range(n_modes))

    versions = [0] * n_modes
    cached: Dict[Tuple[int, ...], Tuple[int, ...]] = {}
    built_at: Dict[int, int] = {}
    cost = {
        "contractions": 0,
        "tree_flops": 0,
        "tree_words": 0,
        "root_reads": 0,
        "build_flops": 0,
        "build_words": 0,
    }

    def node_cost(key: Tuple[int, ...]) -> None:
        """Ensure node ``key`` is valid, charging any recomputation (recursive)."""
        if key == root_key:
            return
        complement = [k for k in range(n_modes) if k not in key]
        snapshot = tuple(versions[k] for k in complement)
        if cached.get(key) == snapshot:
            return
        parent_key = parents[key]
        node_cost(parent_key)
        dims = [shape[k] for k in parent_key]
        modes = list(parent_key)
        has_rank = parent_key != root_key
        for k in sorted(set(parent_key) - set(key), reverse=True):
            axis = modes.index(k)
            flops, words = _step_cost(dims, dims[axis], rank, has_rank)
            cost["contractions"] += 1
            cost["tree_flops"] += flops
            cost["tree_words"] += words
            if not has_rank:
                cost["root_reads"] += 1
            has_rank = True
            dims.pop(axis)
            modes.pop(axis)
        cached[key] = snapshot

    n_sweeps = 1 if first_sweep else _STEADY_SWEEPS
    for sweep in range(n_sweeps):
        if sweep == n_sweeps - 1:
            cost = {name: 0 for name in cost}
        for mode in range(n_modes):
            parent_key = parents[(mode,)]
            if parent_key != root_key:
                node_cost(parent_key)
            for k in parent_key:
                if k == mode:
                    continue
                if built_at.get(k) != versions[k]:
                    flops, words = sampler_build_cost(shape[k], rank, distribution)
                    cost["build_flops"] += flops
                    cost["build_words"] += words
                    built_at[k] = versions[k]
            versions[mode] += 1

    draw_flops = 0
    draw_words = 0
    eval_flops = 0
    eval_words = 0
    total_distinct = 0
    for mode in range(n_modes):
        parent_key = parents[(mode,)]
        free = tuple(k for k in parent_key if k != mode)
        has_rank = parent_key != root_key
        if distribution == "tree-leverage":
            flops, words = tree_draw_cost([shape[k] for k in free], rank, n_draws)
            draw_flops += flops
            draw_words += words
        flops, words = _eval_terms(
            int(shape[mode]), rank, len(free), distinct[mode], has_rank
        )
        eval_flops += flops
        eval_words += words
        total_distinct += distinct[mode]

    return FusedSweepCost(
        contractions=cost["contractions"],
        tree_flops=cost["tree_flops"],
        tree_words=cost["tree_words"],
        root_reads=cost["root_reads"],
        build_flops=cost["build_flops"],
        build_words=cost["build_words"],
        draw_flops=draw_flops,
        draw_words=draw_words,
        eval_flops=eval_flops,
        eval_words=eval_words,
        n_draws=n_modes * n_draws,
        distinct_rows=total_distinct,
    )


def sampled_tree_sweep_cost(
    shape: Sequence[int],
    rank: int,
    n_draws: int,
    distinct_rows: Sequence[int],
    *,
    distribution: str = "tree-leverage",
) -> FusedSweepCost:
    """Counted cost of one ALS sweep of the *per-call* sampled kernel.

    The baseline column of the fused frontier: every mode rebuilds all
    ``N - 1`` factors' sampling state, draws over all ``N - 1`` modes, and
    gathers raw (rank-free) tensor fibers — exactly the
    ``cache=False`` degenerate mode of the fused kernel (and, under
    ``distribution="tree-leverage"``, the counted shape of the registry
    kernel ``"sampled-tree"``), so the replay equals that kernel's counted
    per-sweep ledger under the shared conventions.
    """
    shape = check_shape(shape, min_ndim=2)
    rank = check_rank(rank)
    n_draws = check_positive_int(n_draws, "n_draws")
    n_modes = len(shape)
    distinct = _check_distinct(distinct_rows, n_modes)

    build_flops = 0
    build_words = 0
    draw_flops = 0
    draw_words = 0
    eval_flops = 0
    eval_words = 0
    for mode in range(n_modes):
        free = tuple(k for k in range(n_modes) if k != mode)
        for k in free:
            flops, words = sampler_build_cost(shape[k], rank, distribution)
            build_flops += flops
            build_words += words
        if distribution == "tree-leverage":
            flops, words = tree_draw_cost([shape[k] for k in free], rank, n_draws)
            draw_flops += flops
            draw_words += words
        flops, words = _eval_terms(
            int(shape[mode]), rank, len(free), distinct[mode], has_rank=False
        )
        eval_flops += flops
        eval_words += words

    return FusedSweepCost(
        build_flops=build_flops,
        build_words=build_words,
        draw_flops=draw_flops,
        draw_words=draw_words,
        eval_flops=eval_flops,
        eval_words=eval_words,
        n_draws=n_modes * n_draws,
        distinct_rows=sum(distinct),
    )


def expected_distinct_rows(
    shape: Sequence[int], n_draws: int, *, fused: bool, split: Optional[ModeSplit] = None
) -> List[int]:
    """Deterministic distinct-count cap per mode: ``min(draws, row space)``.

    The a priori modelling convention of :func:`three_way_crossover`: a draw
    of ``D`` rows can materialize at most ``min(D, J)`` distinct rows, where
    ``J`` is the sampled row space — the full Khatri-Rao row count for the
    per-call kernel, only the free modes' for the fused kernel.
    """
    shape = check_shape(shape, min_ndim=2)
    n_modes = len(shape)
    parents = _build_parents(n_modes, split if split is not None else split_half)
    caps: List[int] = []
    for mode in range(n_modes):
        if fused:
            space_modes = tuple(k for k in parents[(mode,)] if k != mode)
        else:
            space_modes = tuple(k for k in range(n_modes) if k != mode)
        space = 1
        for k in space_modes:
            space *= int(shape[k])
        caps.append(min(int(n_draws), space))
    return caps


def three_way_crossover(
    shape: Sequence[int],
    ranks: Sequence[int],
    draw_counts: Sequence[int],
    *,
    split: Optional[ModeSplit] = None,
) -> List[dict]:
    """Modelled per-sweep flops/words of the three engines over (rank, draws).

    For every ``(R, D)`` cell: the exact ``"dimtree"`` sweep, the per-call
    ``"sampled-tree"`` sweep, and the fused ``"sampled-dimtree"`` sweep
    (distinct counts capped by :func:`expected_distinct_rows`), plus which
    engine wins each of flops and words — the three-way crossover as a
    function of draws and rank.  The fused engine's winning region is the
    window where the draw count is large enough to amortize its fixed
    root-contraction cost against the per-call baseline yet small enough
    that sampled leaf evaluation still undercuts the exact tree.
    """
    shape = check_shape(shape, min_ndim=2)
    rows: List[dict] = []
    for rank in ranks:
        rank = check_rank(rank)
        exact_flops = dimtree_sweep_flops(shape, rank, split=split)
        exact_words = dimtree_sweep_words(shape, rank, split=split)
        for n_draws in draw_counts:
            fused = sampled_dimtree_sweep_cost(
                shape,
                rank,
                n_draws,
                expected_distinct_rows(shape, n_draws, fused=True, split=split),
                split=split,
            )
            baseline = sampled_tree_sweep_cost(
                shape,
                rank,
                n_draws,
                expected_distinct_rows(shape, n_draws, fused=False),
            )
            costs_f = {
                "dimtree": exact_flops,
                "sampled-tree": baseline.flops,
                "sampled-dimtree": fused.flops,
            }
            costs_w = {
                "dimtree": exact_words,
                "sampled-tree": baseline.words,
                "sampled-dimtree": fused.words,
            }
            rows.append(
                {
                    "shape": list(shape),
                    "rank": int(rank),
                    "n_draws": int(n_draws),
                    "flops": costs_f,
                    "words": costs_w,
                    "flops_winner": min(costs_f, key=costs_f.get),
                    "words_winner": min(costs_w, key=costs_w.get),
                    "fused_wins_both": bool(
                        costs_f["sampled-dimtree"] == min(costs_f.values())
                        and costs_w["sampled-dimtree"] == min(costs_w.values())
                    ),
                }
            )
    return rows
