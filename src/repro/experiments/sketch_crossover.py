"""Experiment ``sketch-crossover``: sampled-vs-exact MTTKRP error/speedup frontier.

The sampled kernel trades accuracy for data movement: fewer distinct
Khatri-Rao rows mean fewer words and flops but higher estimator variance.
This harness measures that frontier on a seeded coherent problem — a
rank-``R`` tensor whose factor rows decay geometrically, the regime
leverage-score sampling is designed for — and reports, per distribution and
draw count:

* the number of *distinct* rows materialized (the cost-relevant count) and
  its fraction of ``J = prod_{k != mode} I_k``;
* the relative Frobenius error against the exact einsum kernel;
* the measured wall-clock speedup over the exact kernel;
* the modelled word ratio against the optimal blocked algorithm (Eq. (13)).

The same rows back the JSON frontier that ``benchmarks/bench_sketch.py``
records.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.kernels import mttkrp
from repro.costmodel.sequential_model import blocked_cost_simplified
from repro.experiments.report import format_table
from repro.observe.tracer import median_time
from repro.sketch.costmodel import crossover_sample_count, sampled_mttkrp_words
from repro.sketch.sampled_mttkrp import sampled_mttkrp
from repro.sketch.sampling import draw_krp_samples
from repro.tensor.khatri_rao import implicit_krp_column_count
from repro.tensor.kruskal import KruskalTensor
from repro.tensor.random import random_factors
from repro.utils.validation import check_mode, check_rank, check_shape

#: Default seeded problem: the acceptance configuration of the subsystem.
DEFAULT_SHAPE = (50, 60, 70)
DEFAULT_RANK = 10
DEFAULT_MODE = 0
DEFAULT_COHERENCE = 10.0
DEFAULT_DRAW_COUNTS = (500, 2000, 5000, 20000)
DEFAULT_DISTRIBUTIONS = ("uniform", "leverage", "product-leverage", "tree-leverage")


@dataclass(frozen=True)
class SketchCrossoverRow:
    """One (distribution, draw count) point of the error/speedup frontier.

    Attributes
    ----------
    distribution:
        Sampling distribution of the point.
    n_draws:
        Draws taken with replacement.
    distinct_rows:
        Distinct Khatri-Rao rows materialized (what costs scale with).
    row_fraction:
        ``distinct_rows / J``.
    rel_error:
        Relative Frobenius error vs the exact einsum kernel.
    speedup:
        Exact kernel wall time over the *end-to-end* sampled time (drawing
        the distribution included — at small scale this can be < 1, since
        exact leverage scores materialize the full Khatri-Rao block).
    kernel_speedup:
        Exact kernel wall time over the sampled kernel alone (samples
        pre-drawn): the gather + sampled GEMM against the full einsum, i.e.
        the per-iteration advantage once a distribution is reused.
    modeled_word_ratio:
        Modelled sampled words (at ``distinct_rows``) over the exact blocked
        communication of Eq. (13).
    """

    distribution: str
    n_draws: int
    distinct_rows: int
    row_fraction: float
    rel_error: float
    speedup: float
    kernel_speedup: float
    modeled_word_ratio: float


def coherent_problem(
    shape: Sequence[int] = DEFAULT_SHAPE,
    rank: int = DEFAULT_RANK,
    *,
    coherence: float = DEFAULT_COHERENCE,
    seed=1,
):
    """Seeded coherent CP problem: factors with geometrically decaying row norms.

    Returns ``(tensor, factors)`` where the tensor is exactly rank-``rank``
    in the returned factors — the near-converged ALS state in which the
    sampled kernel is actually invoked.  ``coherence`` controls how fast the
    row scales ``exp(-coherence * i / I_k)`` decay (0 gives the incoherent
    Gaussian case where uniform sampling is already optimal).
    """
    shape = check_shape(shape, min_ndim=2)
    rank = check_rank(rank)
    factors = random_factors(shape, rank, seed=seed)
    scaled = [
        f * np.exp(-coherence * np.arange(f.shape[0]) / f.shape[0])[:, None]
        for f in factors
    ]
    return KruskalTensor(scaled).full(), scaled


def sketch_crossover_rows(
    shape: Sequence[int] = DEFAULT_SHAPE,
    rank: int = DEFAULT_RANK,
    *,
    mode: int = DEFAULT_MODE,
    draw_counts: Sequence[int] = DEFAULT_DRAW_COUNTS,
    distributions: Sequence[str] = DEFAULT_DISTRIBUTIONS,
    coherence: float = DEFAULT_COHERENCE,
    memory_words: int = 2**14,
    seed: int = 1,
    sample_seed: int = 7,
) -> List[SketchCrossoverRow]:
    """Measure the sampled-vs-exact frontier on the seeded coherent problem."""
    shape = check_shape(shape, min_ndim=2)
    rank = check_rank(rank)
    mode = check_mode(mode, len(shape))
    tensor, factors = coherent_problem(shape, rank, coherence=coherence, seed=seed)
    krp_rows = implicit_krp_column_count(shape, mode)

    # Median-of->=3 timing throughout: single perf_counter samples at this
    # scale are dominated by scheduler jitter (and were clamped by
    # max(..., 1e-9)); the median is a robust location estimate, and the
    # kernels being timed are deterministic so repetition is free.
    exact_time, exact = median_time(lambda: mttkrp(tensor, factors, mode))
    exact_time = max(exact_time, 1e-9)
    exact_norm = float(np.linalg.norm(exact))
    blocked_words = blocked_cost_simplified(shape, rank, memory_words)

    rng = np.random.default_rng(sample_seed)
    rows: List[SketchCrossoverRow] = []
    for distribution in distributions:
        for n_draws in draw_counts:
            # The *counted* draw consumes the shared generator exactly once,
            # as before, so the frontier columns (distinct_rows and friends)
            # stay byte-identical; timing repetitions use fresh fixed-seed
            # generators and never touch the counted stream.
            samples = draw_krp_samples(
                factors, mode, int(n_draws), distribution=distribution, seed=rng
            )
            draw_time, _ = median_time(
                lambda: draw_krp_samples(
                    factors,
                    mode,
                    int(n_draws),
                    distribution=distribution,
                    seed=np.random.default_rng(sample_seed),
                )
            )
            draw_time = max(draw_time, 1e-9)

            kernel_time, report = median_time(
                lambda: sampled_mttkrp(
                    tensor, factors, mode, samples=samples, return_report=True
                )
            )
            kernel_time = max(kernel_time, 1e-9)

            error = float(np.linalg.norm(report.result - exact)) / max(exact_norm, 1e-12)
            words = sampled_mttkrp_words(shape, rank, mode, report.distinct_rows)
            rows.append(
                SketchCrossoverRow(
                    distribution=distribution,
                    n_draws=int(n_draws),
                    distinct_rows=report.distinct_rows,
                    row_fraction=report.distinct_rows / krp_rows,
                    rel_error=error,
                    speedup=exact_time / (draw_time + kernel_time),
                    kernel_speedup=exact_time / kernel_time,
                    modeled_word_ratio=words / max(blocked_words, 1e-12),
                )
            )
    return rows


def format_sketch_crossover_table(rows: Optional[List[SketchCrossoverRow]] = None) -> str:
    """Render the frontier as a text table."""
    if rows is None:
        rows = sketch_crossover_rows()
    table_rows = []
    for row in rows:
        table_rows.append(
            [
                row.distribution,
                row.n_draws,
                row.distinct_rows,
                row.row_fraction,
                row.rel_error,
                row.speedup,
                row.kernel_speedup,
                row.modeled_word_ratio,
            ]
        )
    return format_table(
        [
            "distribution",
            "draws",
            "distinct rows",
            "row fraction",
            "rel error",
            "speedup",
            "kernel speedup",
            "word ratio vs Eq.(13)",
        ],
        table_rows,
        title="Sampled vs exact MTTKRP: error/speedup frontier (coherent seeded problem)",
    )


def sketch_frontier(
    shape: Sequence[int] = DEFAULT_SHAPE,
    rank: int = DEFAULT_RANK,
    *,
    mode: int = DEFAULT_MODE,
    draw_counts: Sequence[int] = DEFAULT_DRAW_COUNTS,
    distributions: Sequence[str] = DEFAULT_DISTRIBUTIONS,
    coherence: float = DEFAULT_COHERENCE,
    memory_words: int = 2**14,
    seed: int = 1,
    sample_seed: int = 7,
) -> dict:
    """JSON-serialisable error/speedup frontier (recorded by ``bench_sketch``)."""
    rows = sketch_crossover_rows(
        shape,
        rank,
        mode=mode,
        draw_counts=draw_counts,
        distributions=distributions,
        coherence=coherence,
        memory_words=memory_words,
        seed=seed,
        sample_seed=sample_seed,
    )
    return {
        "problem": {
            "shape": list(check_shape(shape)),
            "rank": int(rank),
            "mode": int(mode),
            "coherence": float(coherence),
            "memory_words": int(memory_words),
            "seed": int(seed),
            "sample_seed": int(sample_seed),
            "krp_rows": implicit_krp_column_count(shape, mode),
        },
        "modeled_crossover_sample_count": crossover_sample_count(
            shape, rank, mode, memory_words
        ),
        "rows": [asdict(row) for row in rows],
    }
