"""Experiment ``sketch-parallel``: measured distributed sampled-MTTKRP frontier.

PR 1's ``sketch-crossover`` experiment measured the sampled kernel's
*accuracy* frontier but could only *model* its communication; this harness
runs the distributed sampled MTTKRP of :mod:`repro.sketch.parallel` on the
simulated machine and reports, per processor count, draw count, and sampling
strategy (the score-gather ``product-leverage`` setup, the factor-gather
``leverage`` setup, and the Gram-All-Reduce-only ``tree-leverage`` sampler),
the words the per-rank ledger actually recorded:

* **measured** words (setup + kernel phases) and the exact collective-replay
  prediction they must equal;
* the closed-form sampled model and the **exact** Algorithm 3 baseline
  (measured on its own best grid) — sampling wins when measured words fall
  strictly below the exact words;
* the paper's combined **parallel lower bound** — below it, the sampled run
  moves fewer words per processor than any exact MTTKRP is allowed to;
* the relative error of the estimate, the resource being traded.

The same rows back the JSON frontier recorded by
``benchmarks/bench_sketch_parallel.py``; all quantities are deterministic
counts and ratios (no wall-clock), so the frontier is reproducible across
machines from its seeds.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.experiments.report import format_table
from repro.experiments.sketch_crossover import coherent_problem
from repro.sketch.parallel.reconcile import (
    ReconciledSampledRun,
    reconcile_sampled_mttkrp,
)
from repro.utils.validation import check_mode, check_rank, check_shape

#: Default seeded problem (smaller than sketch-crossover's: every point runs
#: a full simulated machine).
DEFAULT_SHAPE = (24, 20, 16)
DEFAULT_RANK = 6
DEFAULT_MODE = 0
DEFAULT_COHERENCE = 10.0
#: The strong-scaling axis: the toy counts (4-12) where the output
#: Reduce-Scatter dominates every point, extended (24, 48 — the PR-2
#: follow-up) into the regime where the per-rank output piece has shrunk
#: and the draw-dependent sampled-row All-Gathers take over the kernel
#: phase.
DEFAULT_PROCESSOR_COUNTS = (4, 8, 12, 24, 48)
DEFAULT_DRAW_COUNTS = (8, 32, 128)
#: Strategies swept per (P, draws) point: the three leverage-family setups —
#: score-gather ("product-leverage"), full factor gather ("leverage"), and
#: the Gram-All-Reduce-only tree sampler — so the setup-cost elimination is
#: measured column against column.
DEFAULT_DISTRIBUTIONS = ("product-leverage", "leverage", "tree-leverage")


def sketch_parallel_rows(
    shape: Sequence[int] = DEFAULT_SHAPE,
    rank: int = DEFAULT_RANK,
    *,
    mode: int = DEFAULT_MODE,
    processor_counts: Sequence[int] = DEFAULT_PROCESSOR_COUNTS,
    draw_counts: Sequence[int] = DEFAULT_DRAW_COUNTS,
    distributions: Sequence[str] = DEFAULT_DISTRIBUTIONS,
    coherence: float = DEFAULT_COHERENCE,
    seed: int = 1,
    sample_seed: int = 7,
    charge_setup: bool = True,
) -> List[ReconciledSampledRun]:
    """Reconcile the distributed sampled MTTKRP over a ``P`` x draws x strategy sweep.

    Every ``(P, draws)`` point draws with ``seed = sample_seed + index`` (a
    fixed offset per point) so the sweep is reproducible yet points are
    independent; the *same* point seed is reused across the swept
    distributions, so per-point columns face comparable draws and their
    setup-word columns differ only by strategy.
    """
    shape = check_shape(shape, min_ndim=2)
    rank = check_rank(rank)
    mode = check_mode(mode, len(shape))
    tensor, factors = coherent_problem(shape, rank, coherence=coherence, seed=seed)
    rows: List[ReconciledSampledRun] = []
    index = 0
    for n_procs in processor_counts:
        for n_draws in draw_counts:
            point_seed = sample_seed + index
            index += 1
            for distribution in distributions:
                rows.append(
                    reconcile_sampled_mttkrp(
                        tensor,
                        factors,
                        mode,
                        int(n_procs),
                        n_samples=int(n_draws),
                        distribution=distribution,
                        seed=point_seed,
                        charge_setup=charge_setup,
                    )
                )
    return rows


def format_sketch_parallel_table(rows: Optional[List[ReconciledSampledRun]] = None) -> str:
    """Render the measured-vs-modelled frontier as a text table."""
    if rows is None:
        rows = sketch_parallel_rows()
    table_rows = []
    for row in rows:
        table_rows.append(
            [
                row.n_procs,
                "x".join(str(g) for g in row.grid),
                row.distribution,
                row.n_draws,
                row.distinct_rows,
                row.measured_words,
                row.measured_setup_words,
                row.measured_kernel_words,
                row.predicted_words,
                row.exact_words_measured,
                row.lower_bound_words,
                row.rel_error,
                "yes" if row.beats_exact else "no",
            ]
        )
    return format_table(
        [
            "P",
            "grid",
            "distribution",
            "draws",
            "distinct rows",
            "measured words",
            "setup words",
            "kernel words",
            "predicted words",
            "exact words",
            "lower bound",
            "rel error",
            "beats exact",
        ],
        table_rows,
        title=(
            "Distributed sampled MTTKRP: measured per-rank words vs exact "
            "algorithm and parallel lower bound (coherent seeded problem)"
        ),
    )


def sketch_parallel_frontier(
    shape: Sequence[int] = DEFAULT_SHAPE,
    rank: int = DEFAULT_RANK,
    *,
    mode: int = DEFAULT_MODE,
    processor_counts: Sequence[int] = DEFAULT_PROCESSOR_COUNTS,
    draw_counts: Sequence[int] = DEFAULT_DRAW_COUNTS,
    distributions: Sequence[str] = DEFAULT_DISTRIBUTIONS,
    coherence: float = DEFAULT_COHERENCE,
    seed: int = 1,
    sample_seed: int = 7,
    charge_setup: bool = True,
) -> dict:
    """JSON-serialisable measured frontier (recorded by ``bench_sketch_parallel``).

    Deterministic by construction: every value is a word count, a ratio, or
    an error derived from seeded draws — rerunning with the same seeds on any
    machine reproduces the file byte for byte.
    """
    rows = sketch_parallel_rows(
        shape,
        rank,
        mode=mode,
        processor_counts=processor_counts,
        draw_counts=draw_counts,
        distributions=distributions,
        coherence=coherence,
        seed=seed,
        sample_seed=sample_seed,
        charge_setup=charge_setup,
    )
    return {
        "problem": {
            "shape": list(check_shape(shape)),
            "rank": int(rank),
            "mode": int(mode),
            "coherence": float(coherence),
            "distributions": list(distributions),
            "seed": int(seed),
            "sample_seed": int(sample_seed),
            "charge_setup": bool(charge_setup),
        },
        "rows": [row.to_dict() for row in rows],
    }
