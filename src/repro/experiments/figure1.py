"""Experiment ``fig1-projections``: reproduce the Figure 1 example.

Figure 1 of the paper illustrates, for ``N = 3``, ``I_1 = I_2 = I_3 = 15``,
``R = 4`` and a set ``F`` of six iteration-space points, the four projections
``φ_1(F), ..., φ_4(F)`` onto the data arrays and (implicitly) the HBL bound
of Lemma 4.1.  This harness regenerates the projection sizes and the bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.bounds.hbl import figure1_example_points, projection_counts, verify_hbl_inequality
from repro.experiments.report import format_table


@dataclass(frozen=True)
class Figure1Report:
    """Projection sizes and HBL bound for the Figure 1 example set."""

    n_points: int
    projection_sizes: List[int]
    hbl_bound: float


def figure1_projection_report() -> Figure1Report:
    """Compute the Figure 1 projections and the corresponding HBL bound."""
    points = figure1_example_points()
    sizes = projection_counts(points, n_modes=3)
    count, bound = verify_hbl_inequality(points, n_modes=3)
    return Figure1Report(n_points=count, projection_sizes=sizes, hbl_bound=bound)


def format_figure1_report(report: Figure1Report = None) -> str:
    """Render the Figure 1 reproduction as a text table."""
    if report is None:
        report = figure1_projection_report()
    rows = [
        ["|F| (iteration points)", report.n_points],
        ["|phi_1(F)| (factor matrix 1)", report.projection_sizes[0]],
        ["|phi_2(F)| (factor matrix 2)", report.projection_sizes[1]],
        ["|phi_3(F)| (factor matrix 3)", report.projection_sizes[2]],
        ["|phi_4(F)| (tensor)", report.projection_sizes[3]],
        ["HBL bound on |F| (Lemma 4.1)", report.hbl_bound],
    ]
    return format_table(
        ["quantity", "value"], rows, title="Figure 1: example iteration-space subset and projections"
    )
