"""Experiment ``tab-seq-optimality``: Theorem 6.1 / Section VI-A, measured.

For a sweep of fast-memory sizes ``M`` this harness *executes* Algorithms 1
and 2 (counting every load/store they issue), evaluates the lower bounds of
Theorem 4.1 and Fact 4.1, the upper-bound formula Eq. (21), and the matmul
baseline's modelled cost, and reports the optimality ratio

    ``measured(Algorithm 2) / max(W_lb1, W_lb2)``

which Theorem 6.1 says is bounded by a constant once ``M`` is large enough
relative to ``N`` and small enough relative to the dimensions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.bounds.sequential import sequential_lower_bound
from repro.costmodel.sequential_model import blocked_cost_upper_bound, matmul_sequential_cost, unblocked_cost
from repro.experiments.report import format_table
from repro.sequential.blocked import sequential_blocked_mttkrp
from repro.sequential.block_size import choose_block_size
from repro.sequential.unblocked import sequential_unblocked_mttkrp
from repro.tensor.random import random_factors, random_tensor


@dataclass(frozen=True)
class SequentialOptimalityRow:
    """One row of the sequential optimality experiment (one memory size)."""

    memory_words: int
    block: int
    measured_blocked: int
    measured_unblocked: int
    upper_bound_eq21: float
    matmul_model: float
    lower_bound_memory: float
    lower_bound_io: float

    @property
    def lower_bound(self) -> float:
        """Effective lower bound ``max(W_lb1, W_lb2, 1)``."""
        return max(self.lower_bound_memory, self.lower_bound_io, 1.0)

    @property
    def optimality_ratio(self) -> float:
        """Measured Algorithm 2 communication over the lower bound."""
        return self.measured_blocked / self.lower_bound


def sequential_optimality_rows(
    shape: Sequence[int] = (24, 24, 24),
    rank: int = 8,
    mode: int = 0,
    memory_sizes: Optional[Sequence[int]] = None,
    *,
    seed: int = 0,
    execute: bool = True,
) -> List[SequentialOptimalityRow]:
    """Run the sequential optimality experiment.

    Parameters
    ----------
    shape, rank, mode:
        Problem configuration (kept modest so the counted execution is fast).
    memory_sizes:
        Fast-memory sizes ``M`` to sweep; defaults to a geometric sweep that
        spans the interesting range for the given shape.
    execute:
        When ``False``, use the closed-form cost expressions instead of
        executing the algorithms (used by quick smoke benchmarks).
    """
    if memory_sizes is None:
        memory_sizes = [64, 128, 256, 512, 1024, 2048]
    tensor = random_tensor(shape, seed=seed)
    factors = random_factors(shape, rank, seed=seed + 1)

    rows: List[SequentialOptimalityRow] = []
    unblocked_words = unblocked_cost(shape, rank)
    for memory_words in memory_sizes:
        block = choose_block_size(len(shape), memory_words, shape=shape)
        if execute:
            blocked = sequential_blocked_mttkrp(
                tensor, factors, mode, block=block, memory_words=memory_words
            )
            measured_blocked = blocked.words_moved
            unblocked = sequential_unblocked_mttkrp(tensor, factors, mode)
            measured_unblocked = unblocked.words_moved
        else:
            from repro.sequential.blocked import blocked_io_cost

            measured_blocked = blocked_io_cost(shape, rank, mode, block)
            measured_unblocked = unblocked_words
        bounds = sequential_lower_bound(shape, rank, memory_words)
        rows.append(
            SequentialOptimalityRow(
                memory_words=memory_words,
                block=block,
                measured_blocked=measured_blocked,
                measured_unblocked=measured_unblocked,
                upper_bound_eq21=blocked_cost_upper_bound(shape, rank, block),
                matmul_model=matmul_sequential_cost(shape, rank, mode, memory_words),
                lower_bound_memory=bounds.memory_dependent,
                lower_bound_io=bounds.io_bound,
            )
        )
    return rows


def format_sequential_optimality_table(rows: Optional[List[SequentialOptimalityRow]] = None) -> str:
    """Render the sequential optimality experiment as a text table."""
    if rows is None:
        rows = sequential_optimality_rows()
    table_rows = []
    for row in rows:
        table_rows.append(
            [
                row.memory_words,
                row.block,
                row.measured_blocked,
                row.measured_unblocked,
                row.upper_bound_eq21,
                row.matmul_model,
                row.lower_bound,
                row.optimality_ratio,
            ]
        )
    return format_table(
        [
            "M",
            "b",
            "Alg2 measured",
            "Alg1 measured",
            "Eq.(21) bound",
            "matmul model",
            "lower bound",
            "Alg2 / lower",
        ],
        table_rows,
        title="Sequential optimality (Theorem 6.1): measured loads+stores vs bounds",
    )
