"""Experiment ``tab-crossover``: where Algorithm 4 starts beating Algorithm 3.

Section VI-B: with ``P <= I / (NR)^{N/(N-1)}`` the optimal general grid has
``P_0 = 1`` (the two algorithms coincide); beyond that threshold the general
algorithm communicates strictly less.  This harness sweeps ``P`` for several
problem configurations, locates the empirical crossover of the cost models,
and compares it with the analytic threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.costmodel.parallel_model import crossover_processors, general_costs, stationary_model_cost
from repro.experiments.report import format_table
from repro.utils.validation import check_rank, check_shape


@dataclass(frozen=True)
class CrossoverRow:
    """One problem configuration's crossover data.

    Attributes
    ----------
    shape, rank:
        Problem configuration.
    analytic_crossover:
        ``I / (NR)^{N/(N-1)}`` from Section VI-B.
    empirical_crossover:
        Smallest swept ``P`` at which the general model is at least 1% cheaper
        than the stationary model (``None`` if it never happens in the sweep).
    max_advantage:
        Largest (stationary / general) ratio observed over the sweep.
    """

    shape: Tuple[int, ...]
    rank: int
    analytic_crossover: float
    empirical_crossover: Optional[int]
    max_advantage: float


def crossover_rows(
    configurations: Optional[Sequence[Tuple[Sequence[int], int]]] = None,
    *,
    log2_p_max: int = 30,
) -> List[CrossoverRow]:
    """Sweep ``P`` for each configuration and locate the Alg3/Alg4 crossover."""
    if configurations is None:
        configurations = [
            ((2**10, 2**10, 2**10), 2**6),
            ((2**10, 2**10, 2**10), 2**10),
            ((2**15, 2**15, 2**15), 2**15),
            ((2**8, 2**8, 2**8, 2**8), 2**8),
        ]
    rows: List[CrossoverRow] = []
    for shape, rank in configurations:
        shape = check_shape(shape)
        rank = check_rank(rank)
        total = 1
        for dim in shape:
            total *= dim
        analytic = crossover_processors(total, len(shape), rank)
        empirical = None
        max_advantage = 1.0
        for log2_p in range(0, log2_p_max + 1):
            n_procs = 2**log2_p
            if n_procs > total:
                break
            stationary = stationary_model_cost(shape, rank, n_procs)
            general = general_costs(shape, rank, n_procs).communication
            if stationary <= 0:
                continue
            ratio = stationary / max(general, 1e-12)
            max_advantage = max(max_advantage, ratio)
            if empirical is None and general < 0.99 * stationary:
                empirical = n_procs
        rows.append(
            CrossoverRow(
                shape=tuple(shape),
                rank=rank,
                analytic_crossover=analytic,
                empirical_crossover=empirical,
                max_advantage=max_advantage,
            )
        )
    return rows


def format_crossover_table(rows: Optional[List[CrossoverRow]] = None) -> str:
    """Render the crossover experiment as a text table."""
    if rows is None:
        rows = crossover_rows()
    table_rows = []
    for row in rows:
        table_rows.append(
            [
                "x".join(str(d) for d in row.shape),
                row.rank,
                row.analytic_crossover,
                row.empirical_crossover if row.empirical_crossover is not None else "never",
                row.max_advantage,
            ]
        )
    return format_table(
        ["shape", "R", "analytic crossover P", "empirical crossover P", "max Alg3/Alg4 ratio"],
        table_rows,
        title="Crossover between Algorithm 3 and Algorithm 4 (Section VI-B)",
    )
