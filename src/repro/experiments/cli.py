"""Command-line reproduction driver.

``python -m repro.experiments`` regenerates every paper artifact in one go
and prints (or writes to a file) the same tables that the benchmarks emit,
so a reader can produce the full paper-vs-measured record without pytest.

Individual experiments can be selected by id (see DESIGN.md §4)::

    python -m repro.experiments --only fig4-strong-scaling tab-crossover
    python -m repro.experiments --quick --output report.txt
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional, Sequence

from repro.experiments.crossover import crossover_rows, format_crossover_table
from repro.experiments.fault_sweep import fault_sweep_rows, format_fault_sweep_table
from repro.experiments.figure1 import format_figure1_report
from repro.experiments.figure4 import figure4_rows, format_figure4_table
from repro.experiments.matmul_comparison import (
    format_matmul_comparison_table,
    matmul_comparison_rows,
)
from repro.experiments.parallel_optimality import (
    format_parallel_optimality_table,
    parallel_optimality_rows,
)
from repro.experiments.sequential_optimality import (
    format_sequential_optimality_table,
    sequential_optimality_rows,
)
from repro.experiments.sketch_crossover import (
    format_sketch_crossover_table,
    sketch_crossover_rows,
)
from repro.experiments.sketch_parallel import (
    format_sketch_parallel_table,
    sketch_parallel_rows,
)


def _run_figure1(quick: bool) -> str:  # noqa: ARG001 - uniform signature
    return format_figure1_report()


def _run_figure4(quick: bool) -> str:
    summary = figure4_rows(log2_p_max=24 if quick else 30)
    return format_figure4_table(summary)


def _run_sequential(quick: bool) -> str:
    memory_sizes = [64, 256, 1024] if quick else [64, 128, 256, 512, 1024, 2048]
    rows = sequential_optimality_rows(memory_sizes=memory_sizes)
    return format_sequential_optimality_table(rows)


def _run_parallel(quick: bool) -> str:
    counts = [2, 4, 8] if quick else [2, 4, 8, 16, 32, 64]
    rows = parallel_optimality_rows(processor_counts=counts)
    return format_parallel_optimality_table(rows)


def _run_crossover(quick: bool) -> str:
    configurations = None
    if quick:
        configurations = [((2**8, 2**8, 2**8), 2**6)]
    rows = crossover_rows(configurations=configurations, log2_p_max=24 if quick else 30)
    return format_crossover_table(rows)


def _run_matmul(quick: bool) -> str:  # noqa: ARG001 - uniform signature
    return format_matmul_comparison_table(matmul_comparison_rows())


def _run_sketch_crossover(quick: bool) -> str:
    if quick:
        rows = sketch_crossover_rows(
            shape=(24, 24, 24),
            rank=4,
            draw_counts=[200, 1000],
            distributions=("leverage", "product-leverage", "tree-leverage"),
        )
    else:
        rows = sketch_crossover_rows()
    return format_sketch_crossover_table(rows)


def _run_fault_sweep(quick: bool) -> str:
    if quick:
        rows = fault_sweep_rows(
            shape=(6, 6, 4),
            rank=2,
            n_sweeps=3,
            kernels=("exact", "dimtree"),
            fault_counts=(0, 3),
        )
    else:
        rows = fault_sweep_rows()
    return format_fault_sweep_table(rows)


def _run_sketch_parallel(quick: bool) -> str:
    if quick:
        rows = sketch_parallel_rows(
            shape=(8, 9, 10),
            rank=4,
            processor_counts=[2, 6],
            draw_counts=[8, 32],
            distributions=("uniform", "tree-leverage"),
        )
    else:
        rows = sketch_parallel_rows()
    return format_sketch_parallel_table(rows)


#: Experiment id (DESIGN.md §4) -> harness.
EXPERIMENTS: Dict[str, Callable[[bool], str]] = {
    "fig1-projections": _run_figure1,
    "fig4-strong-scaling": _run_figure4,
    "tab-seq-optimality": _run_sequential,
    "tab-par-optimality": _run_parallel,
    "tab-crossover": _run_crossover,
    "tab-matmul-factors": _run_matmul,
    "sketch-crossover": _run_sketch_crossover,
    "sketch-parallel": _run_sketch_parallel,
    "fault-sweep": _run_fault_sweep,
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for the tests)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's figures and comparisons (see DESIGN.md §4).",
    )
    parser.add_argument(
        "--only",
        nargs="+",
        choices=sorted(EXPERIMENTS),
        help="run only the listed experiment ids (default: all)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="use reduced sweeps so everything finishes in a few seconds",
    )
    parser.add_argument(
        "--output",
        type=str,
        default=None,
        help="write the report to this file instead of stdout",
    )
    return parser


def run_experiments(only: Optional[Sequence[str]] = None, *, quick: bool = False) -> str:
    """Run the selected experiments and return the combined text report."""
    selected = list(only) if only else sorted(EXPERIMENTS)
    unknown = [name for name in selected if name not in EXPERIMENTS]
    if unknown:
        raise ValueError(f"unknown experiment ids: {unknown}")
    sections: List[str] = []
    for name in selected:
        banner = "=" * max(len(name), 20)
        sections.append(f"{banner}\n{name}\n{banner}\n{EXPERIMENTS[name](quick)}")
    return "\n\n".join(sections) + "\n"


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    # Subcommand dispatch happens before the flat parser so the established
    # flag-only invocations (e.g. ``--only sketch-parallel --quick``) are
    # untouched; ``trace-report`` owns its own argument parser.
    if argv and argv[0] == "trace-report":
        from repro.experiments.trace_report import trace_report_main

        return trace_report_main(argv[1:])
    args = build_parser().parse_args(argv)
    report = run_experiments(args.only, quick=args.quick)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report)
        print(f"wrote report to {args.output}")
    else:
        sys.stdout.write(report)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
