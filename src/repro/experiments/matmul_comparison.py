"""Experiment ``tab-matmul-factors``: the Section VI-B factors vs the matmul baseline.

The paper derives the communication advantage of the proposed algorithms over
MTTKRP-via-matmul in two regimes:

* **small P** (``P <= min(I^{1-1/N}, I/(NR)^{N/(N-1)})``): factor
  ``O(P^{1/N} / N)``;
* **large P** (``P >= max(I/R^2, I/(NR)^{N/(N-1)})``): factor
  ``O((IR/P)^{(N-2)/(6N-3)} / N^{N/(2N-1)})``;

and quotes ≈25x at ``P = 2^17`` for the Figure 4 configuration.  This harness
evaluates both cost models at representative points of each regime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.costmodel.matmul import matmul_parallel_cost, matmul_regime
from repro.costmodel.parallel_model import general_costs
from repro.costmodel.strong_scaling import figure4_configuration
from repro.experiments.report import format_table
from repro.utils.validation import check_rank, check_shape


@dataclass(frozen=True)
class MatmulComparisonRow:
    """One probed processor count in the matmul-baseline comparison."""

    n_procs: int
    regime: str
    matmul_words: float
    mttkrp_words: float
    predicted_factor: float

    @property
    def measured_factor(self) -> float:
        """Model ratio matmul / proposed (the paper's "xN less communication")."""
        return self.matmul_words / max(self.mttkrp_words, 1e-12)


def _predicted_factor(shape: Sequence[int], rank: int, n_procs: int) -> float:
    """The asymptotic advantage factor of Section VI-B (unit constants)."""
    n_modes = len(shape)
    total = 1.0
    for dim in shape:
        total *= float(dim)
    small_p_limit = min(
        total ** (1.0 - 1.0 / n_modes), total / (n_modes * rank) ** (n_modes / (n_modes - 1.0))
    )
    large_p_limit = max(total / rank**2, total / (n_modes * rank) ** (n_modes / (n_modes - 1.0)))
    if n_procs <= small_p_limit:
        return n_procs ** (1.0 / n_modes) / n_modes
    if n_procs >= large_p_limit:
        return (total * rank / n_procs) ** ((n_modes - 2.0) / (6.0 * n_modes - 3.0)) / n_modes ** (
            n_modes / (2.0 * n_modes - 1.0)
        )
    return float("nan")


def matmul_comparison_rows(
    shape: Sequence[int] = None,
    rank: int = None,
    mode: int = 0,
    probe_log2_p: Optional[Sequence[int]] = None,
) -> List[MatmulComparisonRow]:
    """Evaluate the matmul-baseline comparison at a set of processor counts."""
    if shape is None or rank is None:
        default_shape, default_rank = figure4_configuration()
        shape = shape if shape is not None else default_shape
        rank = rank if rank is not None else default_rank
    shape = check_shape(shape)
    rank = check_rank(rank)
    if probe_log2_p is None:
        probe_log2_p = [5, 10, 15, 17, 20, 25, 30]
    total = 1.0
    for dim in shape:
        total *= float(dim)
    rows: List[MatmulComparisonRow] = []
    for log2_p in probe_log2_p:
        n_procs = 2**log2_p
        rows_dim = float(shape[mode])
        inner = total / rows_dim
        rows.append(
            MatmulComparisonRow(
                n_procs=n_procs,
                regime=matmul_regime(rows_dim, inner, float(rank), n_procs),
                matmul_words=matmul_parallel_cost(shape, rank, mode, n_procs),
                mttkrp_words=general_costs(shape, rank, n_procs).communication,
                predicted_factor=_predicted_factor(shape, rank, n_procs),
            )
        )
    return rows


def format_matmul_comparison_table(rows: Optional[List[MatmulComparisonRow]] = None) -> str:
    """Render the matmul-baseline comparison as a text table."""
    if rows is None:
        rows = matmul_comparison_rows()
    table_rows = []
    for row in rows:
        exponent = row.n_procs.bit_length() - 1
        table_rows.append(
            [
                f"2^{exponent}",
                row.regime,
                row.matmul_words,
                row.mttkrp_words,
                row.measured_factor,
                row.predicted_factor,
            ]
        )
    return format_table(
        ["P", "matmul regime", "matmul words", "Alg4 words", "model factor", "asymptotic factor"],
        table_rows,
        title="MTTKRP vs matrix-multiplication baseline (Section VI-B)",
    )
