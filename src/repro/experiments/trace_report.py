"""``python -m repro.experiments trace-report``: a traced ALS run, tabulated.

Runs one seeded CP-ALS decomposition (sequential or simulated-parallel) with
the :mod:`repro.observe` tracer installed and renders a per-sweep phase
table — wall-clock seconds beside the counted flops/words and the simulated
collective words each sweep accrued — plus the cache/sampler counter
snapshot and p50/p99 sweep latency.  Optional flags export the Chrome
trace-event JSON (loadable in Perfetto / ``chrome://tracing``), export the
metrics snapshot, and run the measured-vs-modelled drift detector, failing
the process on any discrepancy (the CI smoke step uses exactly that).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.experiments.report import format_table

#: Kernels the traced run can exercise (`--procs 0` runs them sequentially,
#: `--procs P` on the simulated machine).
TRACE_KERNELS = ("dimtree", "sampled-dimtree")


def build_trace_report_parser() -> argparse.ArgumentParser:
    """The ``trace-report`` argument parser (exposed for the tests)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments trace-report",
        description="Run a traced CP-ALS sweep and print the per-sweep phase table.",
    )
    parser.add_argument(
        "--kernel",
        choices=TRACE_KERNELS,
        default="dimtree",
        help="sweep kernel to trace (default: dimtree)",
    )
    parser.add_argument(
        "--shape",
        type=int,
        nargs="+",
        default=[8, 9, 10],
        help="tensor shape of the seeded problem (default: 8 9 10)",
    )
    parser.add_argument("--rank", type=int, default=3, help="CP rank (default: 3)")
    parser.add_argument(
        "--sweeps", type=int, default=4, help="ALS sweeps to run (default: 4)"
    )
    parser.add_argument(
        "--procs",
        type=int,
        default=0,
        help="simulated processors; 0 runs the sequential driver (default: 0)",
    )
    parser.add_argument("--seed", type=int, default=0, help="problem/init seed")
    parser.add_argument(
        "--export-trace",
        type=str,
        default=None,
        metavar="PATH",
        help="write the Chrome trace-event JSON here (Perfetto-loadable)",
    )
    parser.add_argument(
        "--export-metrics",
        type=str,
        default=None,
        metavar="PATH",
        help="write the sorted-key metrics snapshot JSON here",
    )
    parser.add_argument(
        "--check-drift",
        action="store_true",
        help="compare traced spans against the cost-model replay; exit 1 on drift",
    )
    parser.add_argument(
        "--output",
        type=str,
        default=None,
        help="write the report to this file instead of stdout",
    )
    return parser


def _traced_run(args):
    """Run the requested ALS decomposition under tracing; return the session."""
    from repro.observe import tracing
    from repro.tensor.random import noisy_low_rank_tensor

    tensor = noisy_low_rank_tensor(
        tuple(args.shape), args.rank, noise_level=0.05, seed=args.seed
    )
    # tol=0.0 never satisfies the fit-change test, so the driver runs exactly
    # --sweeps iterations — the drift detector needs a known sweep count.
    with tracing() as session:
        if args.procs > 0:
            from repro.cp.parallel_als import parallel_cp_als

            result = parallel_cp_als(
                tensor,
                args.rank,
                args.procs,
                kernel=args.kernel,
                n_iter_max=args.sweeps,
                tol=0.0,
                seed=args.seed + 1,
            )
            grid = result.grids[0]
        else:
            from repro.cp.als import cp_als

            cp_als(
                tensor,
                args.rank,
                n_iter_max=args.sweeps,
                tol=0.0,
                seed=args.seed + 1,
                kernel=args.kernel,
                warn_on_nonconvergence=False,
            )
            grid = None
    return session, grid


def _phase_table(session) -> str:
    """The per-sweep phase table: seconds beside the accrued ledgers."""
    rows: List[List[object]] = []
    for index, span in enumerate(
        sorted(session.spans_named("sweep"), key=lambda s: s.span_id)
    ):
        rows.append(
            [
                index,
                span.attrs.get("iteration", ""),
                span.duration,
                span.flops,
                span.words,
                span.comm_words,
                span.messages,
            ]
        )
    return format_table(
        ["sweep", "iteration", "seconds", "flops", "words", "comm words", "messages"],
        rows,
        title="Traced ALS sweeps (counted ledgers attributed per phase)",
    )


def _summary_lines(session) -> List[str]:
    """Counter snapshot plus the sweep-latency percentiles."""
    lines = ["", "Counters:"]
    counters = session.metrics.counters()
    if counters:
        width = max(len(name) for name in counters)
        lines.extend(f"  {name.ljust(width)}  {value:,}" for name, value in counters.items())
    else:
        lines.append("  (none)")
    latency = session.metrics.histogram_summary("span.sweep.seconds")
    if latency.get("count"):
        lines.append("")
        lines.append(
            "Sweep latency: p50 {p50:.6f}s  p99 {p99:.6f}s over {count} sweeps".format(
                **latency
            )
        )
    return lines


def _check_drift(session, args, grid) -> "object":
    """Run the drift detector matching the traced configuration."""
    from repro.observe import dimtree_drift, fused_drift, parallel_words_drift

    shape = tuple(args.shape)
    if args.procs > 0:
        return parallel_words_drift(
            session, shape, args.rank, grid, kernel=args.kernel
        )
    if args.kernel == "dimtree":
        return dimtree_drift(session, shape, args.rank)
    return fused_drift(session, shape, args.rank)


def trace_report_main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of the ``trace-report`` subcommand."""
    args = build_trace_report_parser().parse_args(argv)
    if args.sweeps < 1:
        print("trace-report: --sweeps must be at least 1", file=sys.stderr)
        return 2
    session, grid = _traced_run(args)

    sections = [_phase_table(session)]
    sections.extend(_summary_lines(session))

    if args.export_trace:
        from repro.observe import write_chrome_trace

        write_chrome_trace(session, args.export_trace)
        sections.append(f"wrote Chrome trace to {args.export_trace}")
    if args.export_metrics:
        from repro.observe import write_metrics_snapshot

        write_metrics_snapshot(session, args.export_metrics)
        sections.append(f"wrote metrics snapshot to {args.export_metrics}")

    exit_code = 0
    if args.check_drift:
        report = _check_drift(session, args, grid)
        label = "parallel words" if args.procs > 0 else "flops/words"
        if report.ok:
            sections.append(
                f"drift check ({report.kernel}, {label}): OK — "
                f"{len(report.records)} quantities match the model exactly"
            )
        else:
            exit_code = 1
            sections.append(f"drift check ({report.kernel}, {label}): FAILED")
            sections.extend(
                "  " + json.dumps(record.to_dict(), sort_keys=True)
                for record in report.drifted()
            )

    text = "\n".join(sections) + "\n"
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote report to {args.output}")
    else:
        sys.stdout.write(text)
    return exit_code
