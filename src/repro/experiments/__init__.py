"""Experiment harnesses that regenerate every figure / comparison of the paper.

Each harness returns plain data structures (lists of dataclasses / dicts) and
has a ``format_*`` companion that renders the same rows as aligned text, so
the benchmarks, the examples, and EXPERIMENTS.md all print from one source of
truth.  See DESIGN.md §4 for the experiment index.
"""

from repro.experiments.figure1 import figure1_projection_report, format_figure1_report
from repro.experiments.figure4 import figure4_rows, format_figure4_table
from repro.experiments.sequential_optimality import (
    sequential_optimality_rows,
    format_sequential_optimality_table,
)
from repro.experiments.parallel_optimality import (
    parallel_optimality_rows,
    format_parallel_optimality_table,
)
from repro.experiments.crossover import crossover_rows, format_crossover_table
from repro.experiments.matmul_comparison import (
    matmul_comparison_rows,
    format_matmul_comparison_table,
)

__all__ = [
    "figure1_projection_report",
    "format_figure1_report",
    "figure4_rows",
    "format_figure4_table",
    "sequential_optimality_rows",
    "format_sequential_optimality_table",
    "parallel_optimality_rows",
    "format_parallel_optimality_table",
    "crossover_rows",
    "format_crossover_table",
    "matmul_comparison_rows",
    "format_matmul_comparison_table",
]
