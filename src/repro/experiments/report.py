"""Tiny text-table formatting helpers shared by the experiment harnesses."""

from __future__ import annotations

from typing import List, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]], *, title: str = "") -> str:
    """Render a list of rows as an aligned, pipe-separated text table.

    Numbers are rendered with :func:`format_number`; everything else with
    ``str``.  Used by every experiment harness so benchmark output, example
    output and EXPERIMENTS.md share one format.
    """
    rendered: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        rendered.append([format_number(cell) for cell in row])
    widths = [max(len(r[i]) for r in rendered) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(w) for h, w in zip(rendered[0], widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered[1:]:
        lines.append(" | ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_number(value: object) -> str:
    """Compact formatting: ints as-is, floats in engineering-friendly form."""
    if isinstance(value, bool) or value is None:
        return str(value)
    if isinstance(value, int):
        return f"{value:,}"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e6 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:,.3f}"
    return str(value)
