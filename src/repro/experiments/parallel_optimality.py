"""Experiment ``tab-par-optimality``: Theorem 6.2 / Section VI-B, measured.

For a sweep of processor counts ``P`` this harness *executes* Algorithms 3
and 4 on the simulated machine (measuring the max-per-rank words the bucket
collectives charge), evaluates the upper-bound model (Eqs. (14)/(18)) and the
memory-independent lower bounds (Theorems 4.2/4.3), and reports the
optimality ratio measured / lower-bound, which Theorem 6.2 says stays bounded
by a constant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.bounds.parallel import combined_parallel_lower_bound
from repro.core.kernels import mttkrp
from repro.costmodel.parallel_model import general_model_cost, stationary_model_cost
from repro.experiments.report import format_table
from repro.parallel.general import general_mttkrp
from repro.parallel.grid_selection import choose_general_grid, choose_stationary_grid
from repro.parallel.stationary import stationary_mttkrp
from repro.tensor.random import random_factors, random_tensor


@dataclass(frozen=True)
class ParallelOptimalityRow:
    """One row of the parallel optimality experiment (one processor count)."""

    n_procs: int
    stationary_grid: Sequence[int]
    general_grid: Sequence[int]
    measured_stationary: int
    measured_general: int
    model_stationary: float
    model_general: float
    lower_bound: float
    stationary_correct: bool
    general_correct: bool

    @property
    def stationary_ratio(self) -> float:
        """Measured Algorithm 3 communication over the lower bound."""
        return self.measured_stationary / max(self.lower_bound, 1.0)

    @property
    def general_ratio(self) -> float:
        """Measured Algorithm 4 communication over the lower bound."""
        return self.measured_general / max(self.lower_bound, 1.0)


def parallel_optimality_rows(
    shape: Sequence[int] = (16, 16, 16),
    rank: int = 8,
    mode: int = 0,
    processor_counts: Optional[Sequence[int]] = None,
    *,
    seed: int = 0,
    check_correctness: bool = True,
) -> List[ParallelOptimalityRow]:
    """Run the parallel optimality experiment on the simulated machine.

    Parameters
    ----------
    shape, rank, mode:
        Problem configuration (small enough that simulating every rank in
        Python is fast).
    processor_counts:
        Values of ``P`` to sweep (default: 2, 4, 8, 16, 32, 64).
    check_correctness:
        Also assemble each distributed output and compare it against the
        single-node reference kernel.
    """
    if processor_counts is None:
        processor_counts = [2, 4, 8, 16, 32, 64]
    tensor = random_tensor(shape, seed=seed)
    factors = random_factors(shape, rank, seed=seed + 1)
    reference = mttkrp(tensor, factors, mode) if check_correctness else None

    rows: List[ParallelOptimalityRow] = []
    for n_procs in processor_counts:
        stationary_grid = choose_stationary_grid(shape, rank, n_procs)
        general_grid = choose_general_grid(shape, rank, n_procs)
        stationary = stationary_mttkrp(tensor, factors, mode, stationary_grid)
        general = general_mttkrp(tensor, factors, mode, general_grid)
        stationary_ok = True
        general_ok = True
        if check_correctness:
            stationary_ok = bool(np.allclose(stationary.assemble(), reference))
            general_ok = bool(np.allclose(general.assemble(), reference))
        bounds = combined_parallel_lower_bound(shape, rank, n_procs)
        rows.append(
            ParallelOptimalityRow(
                n_procs=n_procs,
                stationary_grid=stationary_grid,
                general_grid=general_grid,
                measured_stationary=stationary.max_words_communicated,
                measured_general=general.max_words_communicated,
                model_stationary=stationary_model_cost(shape, rank, n_procs),
                model_general=general_model_cost(shape, rank, n_procs),
                lower_bound=bounds.combined,
                stationary_correct=stationary_ok,
                general_correct=general_ok,
            )
        )
    return rows


def format_parallel_optimality_table(rows: Optional[List[ParallelOptimalityRow]] = None) -> str:
    """Render the parallel optimality experiment as a text table."""
    if rows is None:
        rows = parallel_optimality_rows()
    table_rows = []
    for row in rows:
        table_rows.append(
            [
                row.n_procs,
                "x".join(str(g) for g in row.stationary_grid),
                "x".join(str(g) for g in row.general_grid),
                row.measured_stationary,
                row.measured_general,
                row.model_stationary,
                row.model_general,
                row.lower_bound,
                row.stationary_ratio,
                row.general_ratio,
                row.stationary_correct and row.general_correct,
            ]
        )
    return format_table(
        [
            "P",
            "Alg3 grid",
            "Alg4 grid",
            "Alg3 measured",
            "Alg4 measured",
            "Alg3 model",
            "Alg4 model",
            "lower bound",
            "Alg3/lb",
            "Alg4/lb",
            "correct",
        ],
        table_rows,
        title="Parallel optimality (Theorem 6.2): measured per-rank words vs bounds",
    )
