"""Experiment ``fault-sweep``: the recovery-overhead frontier under injected faults.

The resilience layer (ISSUE 10) claims its recovery is *exact*: a distributed
ALS run under a seeded :class:`~repro.resilience.faults.FaultSchedule` with
``on_fault="retry"`` reaches bitwise the fits of the fault-free run, and its
ledger equals the fault-free ledger plus exactly the charged retries (the
:func:`repro.observe.retry_ledger_drift` invariant).  This harness *measures*
that claim across kernels and fault densities and records what the recovery
costs:

* per (kernel, fault density) point: the faults actually injected, the retry
  words/messages charged, the backoff and delay units accumulated, and the
  **overhead ratio** ``words_under_faults / fault_free_words`` (max over
  ranks) — the recovery-overhead frontier;
* every row *asserts* the two exactness claims before it is emitted —
  ``raise_on_drift`` on the retry-ledger reconciliation and ``==`` on the fit
  histories — so a recorded frontier is itself a passed test.

All quantities are deterministic counts and seeded-run fits (no wall-clock),
so the JSON frontier recorded by ``benchmarks/bench_fault_sweep.py``
regenerates byte for byte on any machine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.cp.parallel_als import parallel_cp_als
from repro.experiments.report import format_table
from repro.observe.drift import retry_ledger_drift
from repro.resilience.faults import FaultSchedule
from repro.utils.validation import check_positive_int, check_rank, check_shape

#: Default seeded problem (small: every point runs two full simulated runs).
DEFAULT_SHAPE = (8, 8, 6)
DEFAULT_RANK = 3
DEFAULT_N_PROCS = 4
DEFAULT_N_SWEEPS = 4
#: Kernels swept (one per communication pattern: per-mode gathers, cached
#: gathers + trees, cached gathers + Gram All-Reduce + replicated draws).
DEFAULT_KERNELS = ("exact", "dimtree", "sampled-dimtree")
#: The fault-density axis: scheduled faults per run (0 = the control row).
DEFAULT_FAULT_COUNTS = (0, 2, 4, 8)


@dataclass(frozen=True)
class FaultSweepRow:
    """One (kernel, fault density) point of the recovery-overhead frontier."""

    kernel: str
    n_faults_scheduled: int
    n_faults_injected: int
    baseline_words: int
    faulted_words: int
    retry_words: int
    retry_messages: int
    backoff_units: int
    delay_units: int
    final_fit: float
    fits_equal: bool
    ledger_exact: bool

    @property
    def overhead(self) -> float:
        """Max-per-rank words under faults relative to fault-free (>= 1.0)."""
        if self.baseline_words == 0:
            return 1.0
        return self.faulted_words / self.baseline_words

    def to_dict(self) -> dict:
        return {
            "kernel": self.kernel,
            "n_faults_scheduled": self.n_faults_scheduled,
            "n_faults_injected": self.n_faults_injected,
            "baseline_words": self.baseline_words,
            "faulted_words": self.faulted_words,
            "retry_words": self.retry_words,
            "retry_messages": self.retry_messages,
            "backoff_units": self.backoff_units,
            "delay_units": self.delay_units,
            "overhead": self.overhead,
            "final_fit": self.final_fit,
            "fits_equal": self.fits_equal,
            "ledger_exact": self.ledger_exact,
        }


def fault_sweep_rows(
    shape: Sequence[int] = DEFAULT_SHAPE,
    rank: int = DEFAULT_RANK,
    *,
    n_procs: int = DEFAULT_N_PROCS,
    n_sweeps: int = DEFAULT_N_SWEEPS,
    kernels: Sequence[str] = DEFAULT_KERNELS,
    fault_counts: Sequence[int] = DEFAULT_FAULT_COUNTS,
    seed: int = 3,
    fault_seed: int = 11,
) -> List[FaultSweepRow]:
    """Measure the recovery-overhead frontier over a kernel x density sweep.

    Every point runs a fault-free baseline and a faulted run under
    ``FaultSchedule.seeded(fault_seed + index, n_faults=density)`` with
    ``on_fault="retry"`` and ``tol=0.0`` (a fixed sweep count, so the two
    runs execute identical schedules), asserts the retry-ledger invariant
    exactly (``raise_on_drift``) and the fit histories bitwise equal, and
    records the charged recovery cost.
    """
    shape = check_shape(shape, min_ndim=2)
    rank = check_rank(rank)
    n_procs = check_positive_int(n_procs, "n_procs")
    rng = np.random.default_rng(seed)
    tensor = rng.standard_normal(shape)
    rows: List[FaultSweepRow] = []
    index = 0
    for kernel in kernels:
        baseline = parallel_cp_als(
            tensor,
            rank,
            n_procs,
            kernel=kernel,
            n_iter_max=int(n_sweeps),
            tol=0.0,
            seed=seed,
        )
        for n_faults in fault_counts:
            schedule = FaultSchedule.seeded(
                fault_seed + index, n_faults=int(n_faults)
            )
            index += 1
            faulted = parallel_cp_als(
                tensor,
                rank,
                n_procs,
                kernel=kernel,
                n_iter_max=int(n_sweeps),
                tol=0.0,
                seed=seed,
                fault_schedule=schedule,
                on_fault="retry",
            )
            report = retry_ledger_drift(faulted.machine, baseline.machine)
            report.raise_on_drift()
            fits_equal = faulted.als.fits == baseline.als.fits
            if not fits_equal:
                raise AssertionError(
                    f"kernel {kernel!r} under {n_faults} faults diverged from "
                    "the fault-free fits — recovery is not exact"
                )
            machine = faulted.machine
            rows.append(
                FaultSweepRow(
                    kernel=kernel,
                    n_faults_scheduled=int(n_faults),
                    n_faults_injected=len(getattr(machine, "injected", [])),
                    baseline_words=int(baseline.machine.words_sent.max()),
                    faulted_words=int(machine.words_sent.max()),
                    retry_words=int(machine.retry_words_sent.sum()),
                    retry_messages=int(machine.retry_messages_sent.sum()),
                    backoff_units=int(machine.backoff_units.sum()),
                    delay_units=int(machine.delay_units.sum()),
                    final_fit=float(faulted.als.final_fit),
                    fits_equal=fits_equal,
                    ledger_exact=report.ok,
                )
            )
    return rows


def format_fault_sweep_table(rows: Optional[List[FaultSweepRow]] = None) -> str:
    """Render the recovery-overhead frontier as a text table."""
    if rows is None:
        rows = fault_sweep_rows()
    table_rows = []
    for row in rows:
        table_rows.append(
            [
                row.kernel,
                row.n_faults_scheduled,
                row.n_faults_injected,
                row.baseline_words,
                row.faulted_words,
                row.retry_words,
                row.backoff_units,
                row.delay_units,
                f"{row.overhead:.4f}",
                "yes" if row.fits_equal else "no",
                "yes" if row.ledger_exact else "no",
            ]
        )
    return format_table(
        [
            "kernel",
            "faults scheduled",
            "faults injected",
            "baseline words",
            "faulted words",
            "retry words",
            "backoff",
            "delay",
            "overhead",
            "fits equal",
            "ledger exact",
        ],
        table_rows,
        title=(
            "Fault-injected distributed CP-ALS: recovery overhead vs the "
            "fault-free run (retry ledger reconciled exactly per row)"
        ),
    )


def fault_sweep_frontier(
    shape: Sequence[int] = DEFAULT_SHAPE,
    rank: int = DEFAULT_RANK,
    *,
    n_procs: int = DEFAULT_N_PROCS,
    n_sweeps: int = DEFAULT_N_SWEEPS,
    kernels: Sequence[str] = DEFAULT_KERNELS,
    fault_counts: Sequence[int] = DEFAULT_FAULT_COUNTS,
    seed: int = 3,
    fault_seed: int = 11,
) -> dict:
    """JSON-serialisable frontier (recorded by ``bench_fault_sweep``).

    Deterministic by construction: word counts, seeded schedules, and seeded
    fits only — rerunning with the same seeds reproduces the file byte for
    byte on any machine.
    """
    rows = fault_sweep_rows(
        shape,
        rank,
        n_procs=n_procs,
        n_sweeps=n_sweeps,
        kernels=kernels,
        fault_counts=fault_counts,
        seed=seed,
        fault_seed=fault_seed,
    )
    return {
        "problem": {
            "shape": list(check_shape(shape)),
            "rank": int(rank),
            "n_procs": int(n_procs),
            "n_sweeps": int(n_sweeps),
            "kernels": list(kernels),
            "fault_counts": [int(n) for n in fault_counts],
            "seed": int(seed),
            "fault_seed": int(fault_seed),
        },
        "rows": [row.to_dict() for row in rows],
    }
