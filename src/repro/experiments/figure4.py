"""Experiment ``fig4-strong-scaling``: regenerate Figure 4 of the paper.

Figure 4 is a *modeled* strong-scaling comparison of words communicated by
the MTTKRP-via-matmul baseline, Algorithm 3 and Algorithm 4 for a 3-way
cubical tensor with ``I = 2^45`` entries and ``R = 2^15``, over
``P = 2^0 .. 2^30``.  The paper highlights that

* both proposed algorithms communicate less than the baseline over the whole
  range (≈ 25x at ``P = 2^17``),
* the stationary and general algorithms only diverge at very large ``P``, and
* the baseline curve has a kink where the optimal matmul algorithm switches
  regime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.costmodel.strong_scaling import StrongScalingPoint, figure4_configuration, strong_scaling_series
from repro.experiments.report import format_table


@dataclass(frozen=True)
class Figure4Summary:
    """Headline claims extracted from the regenerated Figure 4 series.

    Attributes
    ----------
    points:
        The full series.
    ratio_at_2_17:
        (matmul words) / (stationary words) at ``P = 2^17`` — the paper quotes
        "approximately 25x".
    divergence_p:
        Smallest swept ``P`` at which Algorithm 4 communicates at least 5%
        less than Algorithm 3 (the paper quotes divergence at ``P >= 2^27``),
        or ``None`` if they never diverge in the sweep.
    baseline_always_worse:
        Whether the matmul baseline communicates at least as much as the best
        of the two proposed algorithms at every swept ``P`` (the paper's
        headline claim about Figure 4).
    """

    points: List[StrongScalingPoint]
    ratio_at_2_17: float
    divergence_p: Optional[int]
    baseline_always_worse: bool


def figure4_rows(
    *,
    log2_p_max: int = 30,
    log2_p_step: int = 1,
    include_lower_bound: bool = True,
    shape: Sequence[int] = None,
    rank: int = None,
) -> Figure4Summary:
    """Regenerate the Figure 4 series and its headline comparisons."""
    if shape is None or rank is None:
        default_shape, default_rank = figure4_configuration()
        shape = shape if shape is not None else default_shape
        rank = rank if rank is not None else default_rank
    points = strong_scaling_series(
        shape,
        rank,
        log2_p_max=log2_p_max,
        log2_p_step=log2_p_step,
        include_lower_bound=include_lower_bound,
    )
    by_p = {point.n_procs: point for point in points}
    probe = by_p.get(2**17, points[min(len(points) - 1, 17)])
    ratio = probe.matmul_words / probe.stationary_words if probe.stationary_words > 0 else float("inf")
    divergence_p = None
    for point in points:
        if point.stationary_words <= 0 or point.n_procs < 2:
            continue
        if point.general_words < 0.95 * point.stationary_words:
            divergence_p = point.n_procs
            break
    baseline_always_worse = all(
        p.matmul_words >= min(p.stationary_words, p.general_words) * 0.999 for p in points
    )
    return Figure4Summary(
        points=points,
        ratio_at_2_17=ratio,
        divergence_p=divergence_p,
        baseline_always_worse=baseline_always_worse,
    )


def format_figure4_table(summary: Figure4Summary = None, *, log2_p_step: int = 3) -> str:
    """Render the Figure 4 series (sub-sampled for readability) plus headline claims."""
    if summary is None:
        summary = figure4_rows(log2_p_step=1)
    rows = []
    for point in summary.points:
        exponent = point.n_procs.bit_length() - 1
        if exponent % log2_p_step != 0:
            continue
        rows.append(
            [
                f"2^{exponent}",
                point.matmul_words,
                point.stationary_words,
                point.general_words,
                point.general_p0,
                point.lower_bound_words if point.lower_bound_words is not None else "",
            ]
        )
    table = format_table(
        ["P", "matmul words", "Alg3 (stationary)", "Alg4 (general)", "Alg4 P_0", "lower bound"],
        rows,
        title="Figure 4: modeled strong-scaling comparison (I=2^45, R=2^15, N=3)",
    )
    claims = [
        f"matmul / stationary ratio at P=2^17: {summary.ratio_at_2_17:.1f}x (paper: ~25x)",
        f"Alg3 and Alg4 diverge (>5%) at P = {summary.divergence_p} (paper: ~2^27)",
        f"baseline never beats the best proposed algorithm: {summary.baseline_always_worse}",
    ]
    return table + "\n" + "\n".join(claims)
