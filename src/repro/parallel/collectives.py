"""Collective communication operations on the simulated machine.

The collectives really move data between rank-local numpy buffers (so the
parallel algorithms produce numerically exact results) and charge the
*bucket-algorithm* bandwidth cost used in the paper's analysis
(Section V-C3): a bucket All-Gather or Reduce-Scatter over ``q`` processors
proceeds in ``q - 1`` steps, in each of which every processor passes along an
array of at most ``w`` words, where ``w`` is the largest per-processor block
size — so every participating rank is charged ``(q - 1) * w`` words sent and
``(q - 1) * w`` words received.  A Reduce-Scatter additionally charges
``(q - 1) * w`` additions to each rank.

All collectives take the participating ``group`` (an ordered list of ranks —
ordering defines how blocks are concatenated / scattered) and a mapping from
rank to that rank's local buffer.

**Fault semantics** (ISSUE 10): before charging, every collective polls
``machine.consult_fault`` — a no-op on the base machine, a schedule match on
a :class:`~repro.resilience.machine.FaultyMachine`.  A dropped or corrupted
attempt is *re-driven* with exponential backoff (``2**attempt`` units): its
traffic really crossed the network, so it is charged to the main ledgers
*and* to the machine's retry ledgers under a ``<label>/retry`` record, and
the delivered payload is the intact re-driven one — results stay bitwise
fault-free while the ledger grows by exactly the charged retries (the
invariant :func:`repro.observe.drift.retry_ledger_drift` asserts).  A
``"delay"`` fault charges latency units and lets the payload through; a
``"rank-failure"`` raises :class:`~repro.exceptions.RankFailureError`
(recovery is checkpoint/restore at the driver).  Exhausting the machine's
``max_attempts`` raises :class:`~repro.exceptions.RetryExhaustedError`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.exceptions import MachineError, RankFailureError, RetryExhaustedError
from repro.observe.instrument import inc as observe_inc, record_collective
from repro.parallel.machine import CommunicationRecord, SimulatedMachine
from repro.utils.partition import partition_bounds


# ---------------------------------------------------------------------------
# cost helpers (exposed so the cost models and tests can reuse them verbatim)
# ---------------------------------------------------------------------------

def bucket_all_gather_cost(group_size: int, max_local_words: int) -> int:
    """Per-rank words sent (= received) by a bucket All-Gather: ``(q-1) * w``."""
    if group_size < 1:
        raise MachineError("group size must be >= 1")
    return (group_size - 1) * int(max_local_words)


def bucket_reduce_scatter_cost(group_size: int, max_result_words: int) -> int:
    """Per-rank words sent (= received) by a bucket Reduce-Scatter: ``(q-1) * w``."""
    if group_size < 1:
        raise MachineError("group size must be >= 1")
    return (group_size - 1) * int(max_result_words)


def _drive_with_retries(
    machine: SimulatedMachine,
    kind: str,
    group: Sequence[int],
    label: str,
    charge_wasted_attempt: Callable[[int], None],
) -> None:
    """Poll the machine's fault hook until an attempt goes through.

    ``charge_wasted_attempt(backoff)`` charges one dropped/corrupted
    attempt's traffic (main + retry ledgers); this helper owns the shared
    retry policy — exponential backoff, the retry budget, delay charging,
    and rank-failure propagation — so the symmetric bucket collectives and
    the asymmetric root gather behave identically under faults.
    """
    attempt = 0
    while True:
        fault = machine.consult_fault(kind, label, group, attempt)
        if fault is None:
            return
        if fault.kind == "rank-failure":
            raise RankFailureError(
                f"rank failure injected into {kind} ({label!r}); "
                "recover from a checkpoint (repro.resilience.checkpoint)"
            )
        if fault.kind == "delay":
            for rank in group:
                machine.charge_delay(rank, fault.delay_units)
            observe_inc("retry.delay_units", int(fault.delay_units) * len(group))
            return
        # drop / corrupt: the attempt is wasted; charge it and re-drive.
        charge_wasted_attempt(2**attempt)
        observe_inc("retry.count")
        observe_inc("retry.backoff_units", 2**attempt)
        attempt += 1
        if attempt >= machine.max_attempts:
            raise RetryExhaustedError(
                f"{kind} ({label!r}) failed {attempt} times, exhausting the "
                f"retry budget of {machine.max_attempts} attempts"
            )


def _charge_group(
    machine: SimulatedMachine,
    kind: str,
    group: Sequence[int],
    words_per_rank: int,
    label: str,
) -> None:
    # Bucket algorithms proceed in q-1 steps; each step is one message per rank.
    messages = max(len(group) - 1, 0)

    def charge_wasted_attempt(backoff: int) -> None:
        for rank in group:
            machine.charge_retry(rank, words_per_rank, messages, backoff=backoff)
        machine.log(
            CommunicationRecord(
                kind=f"{kind}.retry",
                group=tuple(group),
                words_per_rank=words_per_rank,
                label=f"{label}/retry",
            )
        )
        record_collective(f"{kind}.retry", f"{label}/retry", len(group), words_per_rank, messages)

    _drive_with_retries(machine, kind, group, label, charge_wasted_attempt)
    for rank in group:
        machine.charge_send(rank, words_per_rank)
        machine.charge_receive(rank, words_per_rank)
        machine.charge_messages(rank, messages)
    machine.log(CommunicationRecord(kind=kind, group=tuple(group), words_per_rank=words_per_rank, label=label))
    record_collective(kind, label, len(group), words_per_rank, messages)


# ---------------------------------------------------------------------------
# collectives
# ---------------------------------------------------------------------------

def all_gather(
    machine: SimulatedMachine,
    group: Sequence[int],
    local_blocks: Dict[int, np.ndarray],
    *,
    axis: int = 0,
    label: str = "",
) -> Dict[int, np.ndarray]:
    """All-Gather: every rank in ``group`` receives the concatenation of all blocks.

    Parameters
    ----------
    machine:
        The simulated machine to charge.
    group:
        Ordered list of participating ranks; blocks are concatenated in this
        order.
    local_blocks:
        Mapping rank -> local block.  All blocks must agree on every axis
        except ``axis``.  Zero-sized blocks are allowed.
    axis:
        Concatenation axis.
    label:
        Trace label.

    Returns
    -------
    dict
        Mapping rank -> gathered array (each rank gets its own copy).
    """
    group = machine.check_group(group)
    missing = [r for r in group if r not in local_blocks]
    if missing:
        raise MachineError(f"all_gather: missing local blocks for ranks {missing}")
    blocks = [np.asarray(local_blocks[r]) for r in group]
    gathered = np.concatenate(blocks, axis=axis) if len(blocks) > 1 else blocks[0].copy()
    max_local = max(int(b.size) for b in blocks)
    words = bucket_all_gather_cost(len(group), max_local)
    _charge_group(machine, "all_gather", group, words, label)
    return {rank: gathered.copy() for rank in group}


def reduce_scatter(
    machine: SimulatedMachine,
    group: Sequence[int],
    local_contributions: Dict[int, np.ndarray],
    *,
    axis: int = 0,
    label: str = "",
) -> Dict[int, np.ndarray]:
    """Reduce-Scatter: element-wise sum of the contributions, scattered by blocks.

    The summed array is split into ``len(group)`` balanced blocks along
    ``axis`` (first blocks get the extra rows when the extent does not divide
    evenly) and block ``i`` is delivered to the ``i``-th rank of ``group``.

    Returns
    -------
    dict
        Mapping rank -> its block of the reduced array.
    """
    group = machine.check_group(group)
    missing = [r for r in group if r not in local_contributions]
    if missing:
        raise MachineError(f"reduce_scatter: missing contributions for ranks {missing}")
    arrays = [np.asarray(local_contributions[r]) for r in group]
    shape = arrays[0].shape
    for arr in arrays[1:]:
        if arr.shape != shape:
            raise MachineError(
                f"reduce_scatter: contribution shapes differ ({arr.shape} vs {shape})"
            )
    total = arrays[0].copy()
    for arr in arrays[1:]:
        total += arr
    bounds = partition_bounds(shape[axis], len(group))
    out: Dict[int, np.ndarray] = {}
    max_result_words = 0
    slicer: List[slice] = [slice(None)] * total.ndim
    for (start, stop), rank in zip(bounds, group):
        slicer[axis] = slice(start, stop)
        piece = total[tuple(slicer)].copy()
        out[rank] = piece
        max_result_words = max(max_result_words, int(piece.size))
    words = bucket_reduce_scatter_cost(len(group), max_result_words)
    _charge_group(machine, "reduce_scatter", group, words, label)
    # The bucket Reduce-Scatter also performs (q-1) * w additions per rank.
    for rank in group:
        machine.charge_flops(rank, words)
    return out


def all_reduce(
    machine: SimulatedMachine,
    group: Sequence[int],
    local_contributions: Dict[int, np.ndarray],
    *,
    label: str = "",
) -> Dict[int, np.ndarray]:
    """All-Reduce: element-wise sum delivered in full to every rank.

    Implemented (and costed) as Reduce-Scatter followed by All-Gather, the
    standard bandwidth-optimal composition: per-rank cost
    ``2 (q - 1) * ceil(n / q)`` words for an ``n``-word array.
    """
    group = machine.check_group(group)
    arrays = {r: np.asarray(local_contributions[r]).ravel() for r in group}
    shapes = {r: np.asarray(local_contributions[r]).shape for r in group}
    shape0 = next(iter(shapes.values()))
    for r, s in shapes.items():
        if s != shape0:
            raise MachineError(f"all_reduce: contribution shapes differ ({s} vs {shape0})")
    scattered = reduce_scatter(machine, group, arrays, axis=0, label=label + "/rs")
    gathered = all_gather(machine, group, scattered, axis=0, label=label + "/ag")
    return {rank: gathered[rank].reshape(shape0) for rank in group}


def broadcast(
    machine: SimulatedMachine,
    group: Sequence[int],
    root: int,
    value: np.ndarray,
    *,
    label: str = "",
) -> Dict[int, np.ndarray]:
    """Broadcast ``value`` from ``root`` to every rank in ``group``.

    Costed as the bandwidth-optimal Scatter + All-Gather composition:
    ``2 (q - 1) * ceil(n / q)`` words per rank (``n`` = array size).
    """
    group = machine.check_group(group)
    root = machine.check_rank(root)
    if root not in group:
        raise MachineError(f"broadcast root {root} is not in the group {group}")
    value = np.asarray(value)
    q = len(group)
    chunk = -(-int(value.size) // q) if value.size else 0
    words = 2 * (q - 1) * chunk
    _charge_group(machine, "broadcast", group, words, label)
    return {rank: value.copy() for rank in group}


def gather_to_root(
    machine: SimulatedMachine,
    group: Sequence[int],
    root: int,
    local_blocks: Dict[int, np.ndarray],
    *,
    axis: int = 0,
    label: str = "",
) -> Optional[np.ndarray]:
    """Gather blocks to ``root`` only (used for collecting final results).

    The root receives everything (cost ``sum of other blocks`` received); the
    other ranks send their own block.  Returned array is only meaningful at
    the root; other ranks receive ``None``.
    """
    group = machine.check_group(group)
    root = machine.check_rank(root)
    if root not in group:
        raise MachineError(f"gather root {root} is not in the group {group}")
    blocks = [np.asarray(local_blocks[r]) for r in group]
    max_block = max(int(b.size) for b in blocks)

    def charge_wasted_attempt(backoff: int) -> None:
        # The gather's charging is asymmetric (root receives everything), and
        # so is a wasted attempt's: non-root ranks re-send their block, the
        # root re-receives it — charged on the main ledgers through the
        # normal paths and mirrored on the retry ledgers.
        for rank, block in zip(group, blocks):
            if rank == root:
                continue
            words = int(block.size)
            machine.charge_send(rank, words)
            machine.charge_receive(root, words)
            machine.retry_words_sent[rank] += words
            machine.retry_words_received[root] += words
        for rank in group:
            machine.backoff_units[rank] += int(backoff)
        machine.log(
            CommunicationRecord(
                kind="gather.retry",
                group=tuple(group),
                words_per_rank=max_block,
                label=f"{label}/retry",
            )
        )
        record_collective("gather.retry", f"{label}/retry", len(group), max_block, 0)

    _drive_with_retries(machine, "gather", group, label, charge_wasted_attempt)
    for rank, block in zip(group, blocks):
        if rank == root:
            continue
        machine.charge_send(rank, int(block.size))
        machine.charge_receive(root, int(block.size))
    machine.log(
        CommunicationRecord(
            kind="gather", group=tuple(group), words_per_rank=max_block, label=label
        )
    )
    return np.concatenate(blocks, axis=axis) if len(blocks) > 1 else blocks[0].copy()
