"""Processor-grid selection for Algorithms 3 and 4.

Section V-C3 suggests ``P_k ≈ I_k / (I/P)^{1/N}`` for the stationary
algorithm and Section V-D3 additionally suggests
``P_0 ≈ (NR)^{N/(2N-1)} / (I/P)^{(N-1)/(2N-1)}`` for the general algorithm.
Those rules give real numbers; on a concrete machine ``P`` must be factored
into integers.  This module provides

* :func:`factorizations` — enumerate all ordered factorizations of ``P``;
* :func:`choose_stationary_grid` / :func:`choose_general_grid` — pick the
  integer grid minimising the *exact* bucket-collective cost the simulator
  will charge (so the chosen grid is optimal for the implementation, not just
  asymptotically);
* :func:`ideal_stationary_grid` / :func:`ideal_general_grid` — the paper's
  real-valued rules, used by the analytic cost models at scales where the
  simulator cannot run.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Sequence, Tuple

import numpy as np

from repro.exceptions import GridError
from repro.utils.partition import max_part_size
from repro.utils.validation import check_positive_int, check_rank, check_shape


@lru_cache(maxsize=None)
def _factorizations_cached(n: int, parts: int) -> Tuple[Tuple[int, ...], ...]:
    if parts == 1:
        return ((n,),)
    out: List[Tuple[int, ...]] = []
    for divisor in range(1, n + 1):
        if n % divisor == 0:
            for rest in _factorizations_cached(n // divisor, parts - 1):
                out.append((divisor,) + rest)
    return tuple(out)


def factorizations(n: int, parts: int) -> List[Tuple[int, ...]]:
    """All ordered factorizations of ``n`` into exactly ``parts`` positive factors."""
    n = check_positive_int(n, "n")
    parts = check_positive_int(parts, "parts")
    return [tuple(f) for f in _factorizations_cached(n, parts)]


# ---------------------------------------------------------------------------
# exact per-implementation cost of a candidate grid
# ---------------------------------------------------------------------------

def stationary_grid_cost(shape: Sequence[int], rank: int, grid_dims: Sequence[int]) -> int:
    """Words per processor charged by the simulator for Algorithm 3 on this grid.

    For each mode ``k`` the All-Gather (or, for the output mode, the
    Reduce-Scatter) runs over ``q_k = P / P_k`` processors with per-processor
    block size ``w_k = ceil(ceil(I_k / P_k) * R / q_k)``, costing
    ``(q_k - 1) * w_k`` words.  The total is mode-independent (the output mode
    contributes the same expression), matching Eq. (14) with the balanced
    distribution of :class:`~repro.parallel.distribution.StationaryDistribution`.
    """
    shape = check_shape(shape)
    rank = check_rank(rank)
    if len(grid_dims) != len(shape):
        raise GridError("grid must have one dimension per tensor mode")
    n_procs = int(np.prod(grid_dims, dtype=np.int64))
    total = 0
    for k, (extent, pk) in enumerate(zip(shape, grid_dims)):
        q = n_procs // int(pk)
        block_rows = max_part_size(extent, int(pk))
        w = max_part_size(block_rows * rank, q)
        total += (q - 1) * w
    return total


def general_grid_cost(shape: Sequence[int], rank: int, grid_dims: Sequence[int]) -> int:
    """Words per processor charged by the simulator for Algorithm 4 on this grid.

    ``grid_dims = (P_0, P_1, ..., P_N)``.  The tensor All-Gather over the
    ``P_0``-processor fiber costs ``(P_0 - 1) * w_X`` with
    ``w_X = ceil(prod_k ceil(I_k / P_k) / P_0)``; each factor collective runs
    over ``q_k = P / (P_0 P_k)`` processors with
    ``w_k = ceil(ceil(I_k / P_k) * ceil(R / P_0) / q_k)``.  Matches Eq. (18).
    """
    shape = check_shape(shape)
    rank = check_rank(rank)
    if len(grid_dims) != len(shape) + 1:
        raise GridError("grid must have N+1 dimensions (P_0 first)")
    p0 = int(grid_dims[0])
    n_procs = int(np.prod(grid_dims, dtype=np.int64))
    subtensor_words = 1
    for extent, pk in zip(shape, grid_dims[1:]):
        subtensor_words *= max_part_size(extent, int(pk))
    total = (p0 - 1) * max_part_size(subtensor_words, p0)
    cols = max_part_size(rank, p0)
    for extent, pk in zip(shape, grid_dims[1:]):
        q = n_procs // (p0 * int(pk))
        block_rows = max_part_size(extent, int(pk))
        w = max_part_size(block_rows * cols, q)
        total += (q - 1) * w
    return total


# ---------------------------------------------------------------------------
# integer grid selection
# ---------------------------------------------------------------------------

def choose_stationary_grid(
    shape: Sequence[int], rank: int, n_procs: int, *, require_fit: bool = True
) -> Tuple[int, ...]:
    """Best integer ``N``-way grid for Algorithm 3 on ``n_procs`` processors.

    Parameters
    ----------
    require_fit:
        When ``True`` (default), candidate grids with ``P_k > I_k`` are
        rejected unless no candidate fits, so no grid dimension exceeds its
        tensor dimension.
    """
    shape = check_shape(shape)
    rank = check_rank(rank)
    n_procs = check_positive_int(n_procs, "n_procs")
    candidates = factorizations(n_procs, len(shape))
    if require_fit:
        fitting = [c for c in candidates if all(p <= d for p, d in zip(c, shape))]
        if fitting:
            candidates = fitting
    best = min(candidates, key=lambda c: (stationary_grid_cost(shape, rank, c), c))
    return tuple(best)


def choose_general_grid(
    shape: Sequence[int], rank: int, n_procs: int, *, require_fit: bool = True
) -> Tuple[int, ...]:
    """Best integer ``(N+1)``-way grid for Algorithm 4 on ``n_procs`` processors."""
    shape = check_shape(shape)
    rank = check_rank(rank)
    n_procs = check_positive_int(n_procs, "n_procs")
    candidates = factorizations(n_procs, len(shape) + 1)
    if require_fit:
        fitting = [
            c
            for c in candidates
            if c[0] <= rank and all(p <= d for p, d in zip(c[1:], shape))
        ]
        if fitting:
            candidates = fitting
    best = min(candidates, key=lambda c: (general_grid_cost(shape, rank, c), c))
    return tuple(best)


# ---------------------------------------------------------------------------
# the paper's real-valued grid rules (for the analytic cost models)
# ---------------------------------------------------------------------------

def ideal_stationary_grid(shape: Sequence[int], n_procs: float) -> Tuple[float, ...]:
    """Real-valued grid ``P_k = I_k / (I/P)^{1/N}`` of Section V-C3 (clamped to >= 1)."""
    shape = check_shape(shape)
    total = float(np.prod([float(d) for d in shape]))
    n_modes = len(shape)
    local = (total / float(n_procs)) ** (1.0 / n_modes)
    dims = tuple(max(float(d) / local, 1.0) for d in shape)
    return dims


def ideal_general_grid(shape: Sequence[int], rank: int, n_procs: float) -> Tuple[float, ...]:
    """Real-valued ``(P_0, P_1, ..., P_N)`` rule of Section V-D3 (clamped to >= 1).

    ``P_0 = (NR)^{N/(2N-1)} / (I/P)^{(N-1)/(2N-1)}`` and
    ``P_k = I_k / (I P_0 / P)^{1/N}``.
    """
    shape = check_shape(shape)
    rank = check_rank(rank)
    total = float(np.prod([float(d) for d in shape]))
    n_modes = len(shape)
    local = total / float(n_procs)
    p0 = (n_modes * rank) ** (n_modes / (2.0 * n_modes - 1.0)) / local ** (
        (n_modes - 1.0) / (2.0 * n_modes - 1.0)
    )
    p0 = min(max(p0, 1.0), float(rank), float(n_procs))
    per_mode_local = (total * p0 / float(n_procs)) ** (1.0 / n_modes)
    dims = tuple(max(float(d) / per_mode_local, 1.0) for d in shape)
    return (p0,) + dims
