"""Logical processor grids and their hyperslice communicator groups.

Algorithm 3 organises the ``P`` processors into an ``N``-way grid
``P = P_1 x ... x P_N``; Algorithm 4 uses an ``(N+1)``-way grid
``P = P_0 x P_1 x ... x P_N`` (dimension 0 partitions the rank/column
dimension).  The collectives operate on *hyperslices*: the set of processors
that share a fixed coordinate in one grid dimension (and, for Algorithm 4,
possibly a fixed coordinate in dimension 0 as well).
"""

from __future__ import annotations

from itertools import product
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.exceptions import GridError
from repro.utils.validation import check_positive_int


class ProcessorGrid:
    """A logical multi-dimensional processor grid.

    Ranks are numbered ``0 .. P-1`` in row-major order of their grid
    coordinates (the last grid dimension varies fastest).

    Parameters
    ----------
    dims:
        Grid extents.  Their product is the number of processors ``P``.
    """

    def __init__(self, dims: Sequence[int]) -> None:
        dims = tuple(check_positive_int(d, "grid dimension") for d in dims)
        if not dims:
            raise GridError("grid must have at least one dimension")
        self.dims: Tuple[int, ...] = dims
        self.n_procs = int(np.prod(dims, dtype=np.int64))

    # -- coordinates ----------------------------------------------------------
    def coords(self, rank: int) -> Tuple[int, ...]:
        """Grid coordinates of ``rank`` (row-major, last dimension fastest)."""
        if not 0 <= rank < self.n_procs:
            raise GridError(f"rank {rank} out of range [0, {self.n_procs})")
        out = []
        for dim in reversed(self.dims):
            out.append(rank % dim)
            rank //= dim
        return tuple(reversed(out))

    def rank(self, coords: Sequence[int]) -> int:
        """Rank of the processor with the given grid coordinates."""
        if len(coords) != len(self.dims):
            raise GridError(
                f"expected {len(self.dims)} coordinates, got {len(coords)}"
            )
        rank = 0
        for c, dim in zip(coords, self.dims):
            if not 0 <= c < dim:
                raise GridError(f"coordinate {c} out of range [0, {dim})")
            rank = rank * dim + c
        return rank

    def all_coords(self):
        """Iterate over all grid coordinates in rank order."""
        return product(*(range(d) for d in self.dims))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProcessorGrid(dims={self.dims})"

    # -- communicator groups ---------------------------------------------------
    def slice_group(self, fixed: Dict[int, int]) -> List[int]:
        """Ranks whose coordinates match ``fixed`` (a dim -> value mapping).

        The returned list is ordered by rank, which is the canonical order in
        which the collectives concatenate / scatter data.
        """
        for dim_index, value in fixed.items():
            if not 0 <= dim_index < len(self.dims):
                raise GridError(f"grid dimension {dim_index} out of range")
            if not 0 <= value < self.dims[dim_index]:
                raise GridError(
                    f"coordinate {value} out of range [0, {self.dims[dim_index]}) "
                    f"for grid dimension {dim_index}"
                )
        group = []
        for coords in self.all_coords():
            if all(coords[d] == v for d, v in fixed.items()):
                group.append(self.rank(coords))
        return group

    def hyperslice(self, dim_index: int, rank: int) -> List[int]:
        """Processors that share ``rank``'s coordinate in grid dimension ``dim_index``.

        This is the communicator used by the All-Gather of a factor matrix
        block row (Line 4 of Algorithm 3) and by the Reduce-Scatter of the
        output (Line 7): all processors with the same ``p_k``.
        """
        coords = self.coords(rank)
        return self.slice_group({dim_index: coords[dim_index]})

    def fiber(self, dim_index: int, rank: int) -> List[int]:
        """Processors that differ from ``rank`` only in grid dimension ``dim_index``.

        This is the communicator used by the tensor All-Gather of Algorithm 4
        (Line 3): the ``P_0`` processors along the dimension-0 fiber.
        """
        coords = self.coords(rank)
        fixed = {d: coords[d] for d in range(len(self.dims)) if d != dim_index}
        return self.slice_group(fixed)

    def joint_slice(self, fixed_dims: Sequence[int], rank: int) -> List[int]:
        """Processors sharing ``rank``'s coordinates in all of ``fixed_dims``.

        Algorithm 4's factor-matrix collectives fix *two* grid dimensions
        (dimension 0 and the mode's dimension); this helper returns that
        communicator.
        """
        coords = self.coords(rank)
        fixed = {d: coords[d] for d in fixed_dims}
        return self.slice_group(fixed)

    def position_in_group(self, rank: int, group: Sequence[int]) -> int:
        """Index of ``rank`` within a communicator group (its "group rank")."""
        try:
            return list(group).index(rank)
        except ValueError as exc:
            raise GridError(f"rank {rank} is not a member of the group {group}") from exc
