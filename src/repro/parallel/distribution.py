"""Data distributions for the parallel MTTKRP algorithms (Sections V-C1 and V-D1).

Both algorithms use the same family of distributions:

* every tensor dimension ``k`` is block-partitioned into ``P_k`` contiguous
  index sets ``S^(k)_{p_k}``;
* (Algorithm 4 only) the rank dimension ``[R]`` is block-partitioned into
  ``P_0`` sets ``T_{p_0}``;
* each processor owns the sub-tensor indexed by its grid coordinates
  (Algorithm 3) or a 1/P_0 share of it (Algorithm 4);
* the block row ``A^(k)(S^(k)_{p_k}, :)`` (resp. the block
  ``A^(k)(S^(k)_{p_k}, T_{p_0})``) of each factor matrix is partitioned by
  rows across the processors of the corresponding hyperslice, so that exactly
  one copy of every input is stored across the machine;
* the output ``B^(n)`` ends up distributed the same way as an input factor
  matrix for mode ``n`` would be.

The classes below compute all of those index sets, scatter a concrete tensor
and factor matrices into per-rank local buffers, and reassemble the
distributed output for verification.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import DistributionError
from repro.parallel.grid import ProcessorGrid
from repro.tensor.dense import as_ndarray
from repro.utils.partition import partition_bounds
from repro.utils.validation import check_mode, check_rank, check_shape


# ---------------------------------------------------------------------------
# local data containers
# ---------------------------------------------------------------------------

@dataclass
class LocalTensorBlock:
    """A rank's share of the tensor.

    Attributes
    ----------
    ranges:
        Per-mode global half-open index ranges of the sub-tensor this share
        belongs to.
    data:
        For Algorithm 3: the full sub-tensor.  For Algorithm 4: a 1-D slice of
        the flattened (C-order) sub-tensor.
    flat_range:
        For Algorithm 4: the half-open range of flattened positions owned.
        ``None`` for Algorithm 3.
    """

    ranges: Tuple[Tuple[int, int], ...]
    data: np.ndarray
    flat_range: Optional[Tuple[int, int]] = None


@dataclass
class LocalFactorBlock:
    """A rank's share of one factor matrix (or of the output).

    Attributes
    ----------
    rows:
        Global row indices owned (a contiguous range, stored explicitly).
    cols:
        Global column indices owned (the full ``range(R)`` for Algorithm 3).
    data:
        The local sub-matrix of shape ``(len(rows), len(cols))``.
    """

    rows: np.ndarray
    cols: np.ndarray
    data: np.ndarray

    @property
    def words(self) -> int:
        """Number of entries stored locally."""
        return int(self.data.size)


@dataclass
class DistributedMTTKRPOutput:
    """The distributed output of a parallel MTTKRP and its reassembly.

    Attributes
    ----------
    shape:
        Global output shape ``(I_n, R)``.
    pieces:
        Mapping rank -> :class:`LocalFactorBlock` with that rank's rows/cols.
    """

    shape: Tuple[int, int]
    pieces: Dict[int, LocalFactorBlock] = field(default_factory=dict)

    def assemble(self) -> np.ndarray:
        """Assemble the global output matrix, checking single coverage.

        Raises :class:`~repro.exceptions.DistributionError` if any entry is
        assigned by more than one rank or not assigned at all.
        """
        result = np.zeros(self.shape, dtype=np.float64)
        coverage = np.zeros(self.shape, dtype=np.int64)
        for rank, piece in self.pieces.items():
            if piece.data.size == 0:
                continue
            rows = np.asarray(piece.rows, dtype=np.intp)
            cols = np.asarray(piece.cols, dtype=np.intp)
            result[np.ix_(rows, cols)] = piece.data
            coverage[np.ix_(rows, cols)] += 1
        if np.any(coverage > 1):
            raise DistributionError("output entries assigned by more than one rank")
        if np.any(coverage == 0):
            raise DistributionError("some output entries were not assigned by any rank")
        return result

    def max_local_words(self) -> int:
        """Largest per-rank output share (the ``nnz(B_p)`` of Eqs. (14)/(18))."""
        if not self.pieces:
            return 0
        return max(piece.words for piece in self.pieces.values())


# ---------------------------------------------------------------------------
# Algorithm 3 distribution (N-way grid, stationary tensor)
# ---------------------------------------------------------------------------

class StationaryDistribution:
    """Data distribution of the stationary-tensor algorithm (Section V-C1).

    Parameters
    ----------
    shape:
        Tensor dimensions ``(I_1, ..., I_N)``.
    rank:
        Number of factor-matrix columns ``R``.
    mode:
        Output mode ``n``.
    grid:
        An ``N``-way :class:`ProcessorGrid` (one grid dimension per tensor
        mode).
    """

    def __init__(self, shape: Sequence[int], rank: int, mode: int, grid: ProcessorGrid) -> None:
        self.shape = check_shape(shape, min_ndim=2)
        self.rank = check_rank(rank)
        self.mode = check_mode(mode, len(self.shape))
        if len(grid.dims) != len(self.shape):
            raise DistributionError(
                f"grid must have one dimension per tensor mode: got {len(grid.dims)} "
                f"grid dims for a {len(self.shape)}-way tensor"
            )
        self.grid = grid
        #: per-mode partitions S^(k): list of (start, stop) per grid coordinate
        self.mode_partitions: List[List[Tuple[int, int]]] = [
            partition_bounds(self.shape[k], grid.dims[k]) for k in range(len(self.shape))
        ]

    # -- index sets ------------------------------------------------------------
    def subtensor_ranges(self, rank_id: int) -> Tuple[Tuple[int, int], ...]:
        """Global index ranges of the sub-tensor owned by ``rank_id``."""
        coords = self.grid.coords(rank_id)
        return tuple(self.mode_partitions[k][coords[k]] for k in range(len(self.shape)))

    def factor_hyperslice(self, k: int, rank_id: int) -> List[int]:
        """Communicator over which mode ``k``'s block row is gathered/reduced."""
        return self.grid.hyperslice(k, rank_id)

    def factor_local_rows(self, k: int, rank_id: int) -> np.ndarray:
        """Global rows of ``A^(k)`` (or of ``B^(n)`` when ``k == mode``) owned by ``rank_id``.

        The block row ``S^(k)_{p_k}`` is split into balanced contiguous chunks
        across the hyperslice members (in rank order); ``rank_id`` owns the
        chunk at its position in that hyperslice.
        """
        coords = self.grid.coords(rank_id)
        block_start, block_stop = self.mode_partitions[k][coords[k]]
        group = self.factor_hyperslice(k, rank_id)
        position = self.grid.position_in_group(rank_id, group)
        local_start, local_stop = partition_bounds(block_stop - block_start, len(group))[position]
        return np.arange(block_start + local_start, block_start + local_stop)

    def factor_columns(self, rank_id: int) -> np.ndarray:  # noqa: ARG002 - uniform signature
        """Columns owned (always the full ``range(R)`` for Algorithm 3)."""
        return np.arange(self.rank)

    # -- scattering ---------------------------------------------------------------
    def distribute_tensor(self, tensor) -> Dict[int, LocalTensorBlock]:
        """Scatter the tensor: each rank owns its full sub-tensor (one copy overall)."""
        data = as_ndarray(tensor)
        if data.shape != self.shape:
            raise DistributionError(f"tensor shape {data.shape} does not match {self.shape}")
        out: Dict[int, LocalTensorBlock] = {}
        for rank_id in range(self.grid.n_procs):
            ranges = self.subtensor_ranges(rank_id)
            slices = tuple(slice(start, stop) for start, stop in ranges)
            out[rank_id] = LocalTensorBlock(ranges=ranges, data=data[slices].copy())
        return out

    def distribute_factor(self, k: int, factor: np.ndarray) -> Dict[int, LocalFactorBlock]:
        """Scatter factor matrix ``A^(k)`` row-wise (one copy overall)."""
        factor = np.asarray(factor)
        expected = (self.shape[k], self.rank)
        if factor.shape != expected:
            raise DistributionError(
                f"factor matrix for mode {k} must have shape {expected}, got {factor.shape}"
            )
        out: Dict[int, LocalFactorBlock] = {}
        cols = np.arange(self.rank)
        for rank_id in range(self.grid.n_procs):
            rows = self.factor_local_rows(k, rank_id)
            out[rank_id] = LocalFactorBlock(rows=rows, cols=cols, data=factor[rows, :].copy())
        return out

    def distribute(self, tensor, factors: Sequence[Optional[np.ndarray]]):
        """Scatter the tensor and every input factor matrix.

        Returns ``(tensor_blocks, factor_blocks)`` where ``factor_blocks[k]``
        is ``None`` for ``k == mode`` and a rank->block mapping otherwise.
        """
        tensor_blocks = self.distribute_tensor(tensor)
        factor_blocks: List[Optional[Dict[int, LocalFactorBlock]]] = []
        for k in range(len(self.shape)):
            if k == self.mode:
                factor_blocks.append(None)
            else:
                factor_blocks.append(self.distribute_factor(k, factors[k]))
        return tensor_blocks, factor_blocks

    # -- balance diagnostics -------------------------------------------------------
    def max_tensor_words(self) -> int:
        """Largest per-rank tensor share (the γ-balance quantity of the bounds)."""
        best = 0
        for rank_id in range(self.grid.n_procs):
            ranges = self.subtensor_ranges(rank_id)
            words = 1
            for start, stop in ranges:
                words *= stop - start
            best = max(best, words)
        return best

    def max_factor_words(self) -> int:
        """Largest per-rank total factor-matrix share (the δ-balance quantity)."""
        best = 0
        for rank_id in range(self.grid.n_procs):
            words = 0
            for k in range(len(self.shape)):
                words += len(self.factor_local_rows(k, rank_id)) * self.rank
            best = max(best, words)
        return best


# ---------------------------------------------------------------------------
# Algorithm 4 distribution ((N+1)-way grid)
# ---------------------------------------------------------------------------

class GeneralDistribution:
    """Data distribution of the general algorithm (Section V-D1).

    Grid dimension 0 partitions the rank (column) dimension; grid dimension
    ``k + 1`` partitions tensor mode ``k``.

    Parameters
    ----------
    shape, rank, mode:
        Problem dimensions and output mode.
    grid:
        An ``(N+1)``-way :class:`ProcessorGrid`.
    """

    def __init__(self, shape: Sequence[int], rank: int, mode: int, grid: ProcessorGrid) -> None:
        self.shape = check_shape(shape, min_ndim=2)
        self.rank = check_rank(rank)
        self.mode = check_mode(mode, len(self.shape))
        if len(grid.dims) != len(self.shape) + 1:
            raise DistributionError(
                f"grid must have N+1={len(self.shape) + 1} dimensions, got {len(grid.dims)}"
            )
        self.grid = grid
        #: partitions of each tensor mode over grid dims 1..N
        self.mode_partitions: List[List[Tuple[int, int]]] = [
            partition_bounds(self.shape[k], grid.dims[k + 1]) for k in range(len(self.shape))
        ]
        #: partition of the rank dimension over grid dim 0
        self.rank_partition: List[Tuple[int, int]] = partition_bounds(self.rank, grid.dims[0])

    # -- index sets ------------------------------------------------------------
    def subtensor_ranges(self, rank_id: int) -> Tuple[Tuple[int, int], ...]:
        """Global index ranges of the sub-tensor ``X_{p_1..p_N}`` this rank contributes to."""
        coords = self.grid.coords(rank_id)
        return tuple(self.mode_partitions[k][coords[k + 1]] for k in range(len(self.shape)))

    def tensor_fiber(self, rank_id: int) -> List[int]:
        """The ``P_0`` processors sharing this rank's sub-tensor (Line 3 communicator)."""
        return self.grid.fiber(0, rank_id)

    def rank_columns(self, rank_id: int) -> np.ndarray:
        """Global columns ``T_{p_0}`` owned by this rank."""
        coords = self.grid.coords(rank_id)
        start, stop = self.rank_partition[coords[0]]
        return np.arange(start, stop)

    def factor_group(self, k: int, rank_id: int) -> List[int]:
        """Communicator for mode ``k``'s block: fixed ``p_0`` and fixed ``p_k``."""
        return self.grid.joint_slice([0, k + 1], rank_id)

    def factor_local_rows(self, k: int, rank_id: int) -> np.ndarray:
        """Global rows of mode ``k``'s block owned by this rank (balanced chunk)."""
        coords = self.grid.coords(rank_id)
        block_start, block_stop = self.mode_partitions[k][coords[k + 1]]
        group = self.factor_group(k, rank_id)
        position = self.grid.position_in_group(rank_id, group)
        local_start, local_stop = partition_bounds(block_stop - block_start, len(group))[position]
        return np.arange(block_start + local_start, block_start + local_stop)

    # -- scattering ---------------------------------------------------------------
    def distribute_tensor(self, tensor) -> Dict[int, LocalTensorBlock]:
        """Scatter the tensor: each sub-tensor is shared by its ``P_0`` fiber (one copy overall)."""
        data = as_ndarray(tensor)
        if data.shape != self.shape:
            raise DistributionError(f"tensor shape {data.shape} does not match {self.shape}")
        out: Dict[int, LocalTensorBlock] = {}
        for rank_id in range(self.grid.n_procs):
            ranges = self.subtensor_ranges(rank_id)
            slices = tuple(slice(start, stop) for start, stop in ranges)
            subtensor = data[slices]
            flat = subtensor.reshape(-1)
            fiber = self.tensor_fiber(rank_id)
            position = self.grid.position_in_group(rank_id, fiber)
            start, stop = partition_bounds(flat.size, len(fiber))[position]
            out[rank_id] = LocalTensorBlock(
                ranges=ranges, data=flat[start:stop].copy(), flat_range=(start, stop)
            )
        return out

    def distribute_factor(self, k: int, factor: np.ndarray) -> Dict[int, LocalFactorBlock]:
        """Scatter factor matrix ``A^(k)``: each rank owns a row-chunk of its ``(S_k, T_{p_0})`` block."""
        factor = np.asarray(factor)
        expected = (self.shape[k], self.rank)
        if factor.shape != expected:
            raise DistributionError(
                f"factor matrix for mode {k} must have shape {expected}, got {factor.shape}"
            )
        out: Dict[int, LocalFactorBlock] = {}
        for rank_id in range(self.grid.n_procs):
            rows = self.factor_local_rows(k, rank_id)
            cols = self.rank_columns(rank_id)
            out[rank_id] = LocalFactorBlock(
                rows=rows, cols=cols, data=factor[np.ix_(rows, cols)].copy()
            )
        return out

    def distribute(self, tensor, factors: Sequence[Optional[np.ndarray]]):
        """Scatter the tensor and every input factor matrix (see class docstring)."""
        tensor_blocks = self.distribute_tensor(tensor)
        factor_blocks: List[Optional[Dict[int, LocalFactorBlock]]] = []
        for k in range(len(self.shape)):
            if k == self.mode:
                factor_blocks.append(None)
            else:
                factor_blocks.append(self.distribute_factor(k, factors[k]))
        return tensor_blocks, factor_blocks

    # -- balance diagnostics --------------------------------------------------------
    def max_tensor_words(self) -> int:
        """Largest per-rank tensor share."""
        best = 0
        for rank_id in range(self.grid.n_procs):
            ranges = self.subtensor_ranges(rank_id)
            words = 1
            for start, stop in ranges:
                words *= stop - start
            fiber = self.tensor_fiber(rank_id)
            position = self.grid.position_in_group(rank_id, fiber)
            start, stop = partition_bounds(words, len(fiber))[position]
            best = max(best, stop - start)
        return best

    def max_factor_words(self) -> int:
        """Largest per-rank total factor-matrix share."""
        best = 0
        for rank_id in range(self.grid.n_procs):
            cols = len(self.rank_columns(rank_id))
            words = 0
            for k in range(len(self.shape)):
                words += len(self.factor_local_rows(k, rank_id)) * cols
            best = max(best, words)
        return best
