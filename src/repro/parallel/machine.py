"""Simulated distributed-memory machine with per-processor communication ledgers.

This is the substitution for a real MPI machine (see DESIGN.md): ``P`` ranks,
each with its own local numpy buffers, connected by a network on which the
collectives of :mod:`repro.parallel.collectives` move data.  The machine does
not model time — it records, per rank, the number of words sent, the number
of words received, and the number of arithmetic operations, which are exactly
the quantities the paper's bounds and upper-bound formulas talk about.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.exceptions import MachineError
from repro.observe.instrument import record_label
from repro.utils.validation import check_positive_int


@dataclass
class CommunicationRecord:
    """One logged communication event (used for tracing and tests).

    Attributes
    ----------
    kind:
        Collective name (``"all_gather"``, ``"reduce_scatter"``, ...).
    group:
        Ranks that participated.
    words_per_rank:
        Words charged to each participating rank (sent and received).
    label:
        Free-form label supplied by the caller (e.g. ``"A^(1) gather"``).
    """

    kind: str
    group: Sequence[int]
    words_per_rank: int
    label: str = ""


class SimulatedMachine:
    """``P`` simulated processors with communication and arithmetic counters.

    Parameters
    ----------
    n_procs:
        Number of processors ``P``.
    local_memory_words:
        Optional local-memory capacity ``M``; when given,
        :meth:`charge_storage` verifies per-rank storage high-water marks
        against it and raises :class:`~repro.exceptions.MachineError` on
        overflow.
    """

    #: Attempts a collective may make before the retry loop gives up
    #: (:class:`~repro.exceptions.RetryExhaustedError`); the first attempt
    #: counts, so up to ``max_attempts - 1`` failures are absorbed.
    max_attempts: int = 5

    def __init__(self, n_procs: int, *, local_memory_words: Optional[int] = None) -> None:
        self.n_procs = check_positive_int(n_procs, "n_procs")
        if local_memory_words is not None:
            local_memory_words = check_positive_int(local_memory_words, "local_memory_words")
        self.local_memory_words = local_memory_words
        self.words_sent = np.zeros(self.n_procs, dtype=np.int64)
        self.words_received = np.zeros(self.n_procs, dtype=np.int64)
        self.messages_sent = np.zeros(self.n_procs, dtype=np.int64)
        self.flops = np.zeros(self.n_procs, dtype=np.int64)
        self.storage_high_water = np.zeros(self.n_procs, dtype=np.int64)
        # Retry ledgers: the slice of the main ledgers attributable to
        # re-driven collectives.  Every retry charge also lands on the main
        # ledgers, so ``words_sent == fault-free words + retry_words_sent``
        # holds by construction (the invariant
        # :func:`repro.observe.drift.retry_ledger_drift` asserts exactly).
        self.retry_words_sent = np.zeros(self.n_procs, dtype=np.int64)
        self.retry_words_received = np.zeros(self.n_procs, dtype=np.int64)
        self.retry_messages_sent = np.zeros(self.n_procs, dtype=np.int64)
        self.backoff_units = np.zeros(self.n_procs, dtype=np.int64)
        self.delay_units = np.zeros(self.n_procs, dtype=np.int64)
        self.records: List[CommunicationRecord] = []

    # -- validation ---------------------------------------------------------
    def check_rank(self, rank: int) -> int:
        """Validate a rank id."""
        if not 0 <= rank < self.n_procs:
            raise MachineError(f"rank {rank} out of range [0, {self.n_procs})")
        return int(rank)

    def check_group(self, group: Sequence[int]) -> List[int]:
        """Validate a communicator group (distinct, in-range ranks)."""
        ranks = [self.check_rank(r) for r in group]
        if len(set(ranks)) != len(ranks):
            raise MachineError(f"group contains duplicate ranks: {group}")
        if not ranks:
            raise MachineError("group must contain at least one rank")
        return ranks

    # -- charging -------------------------------------------------------------
    def charge_send(self, rank: int, words: int) -> None:
        """Charge ``words`` sent by ``rank``."""
        rank = self.check_rank(rank)
        if words < 0:
            raise MachineError("cannot charge a negative number of words")
        self.words_sent[rank] += int(words)

    def charge_receive(self, rank: int, words: int) -> None:
        """Charge ``words`` received by ``rank``."""
        rank = self.check_rank(rank)
        if words < 0:
            raise MachineError("cannot charge a negative number of words")
        self.words_received[rank] += int(words)

    def charge_messages(self, rank: int, count: int) -> None:
        """Charge ``count`` messages sent by ``rank`` (latency-cost accounting).

        The paper focuses on bandwidth cost and ignores latency; the message
        counter is provided so the latency behaviour of the bucket collectives
        (``q - 1`` messages each) can still be inspected.
        """
        rank = self.check_rank(rank)
        if count < 0:
            raise MachineError("cannot charge a negative number of messages")
        self.messages_sent[rank] += int(count)

    def charge_flops(self, rank: int, count: int) -> None:
        """Charge ``count`` arithmetic operations performed by ``rank``."""
        rank = self.check_rank(rank)
        if count < 0:
            raise MachineError("cannot charge a negative number of flops")
        self.flops[rank] += int(count)

    def charge_storage(self, rank: int, words: int) -> None:
        """Record that ``rank`` simultaneously held ``words`` words of data.

        Updates the per-rank storage high-water mark and, when the machine was
        constructed with a local-memory capacity, enforces it.
        """
        rank = self.check_rank(rank)
        if words < 0:
            raise MachineError("storage cannot be negative")
        self.storage_high_water[rank] = max(self.storage_high_water[rank], int(words))
        if self.local_memory_words is not None and words > self.local_memory_words:
            raise MachineError(
                f"rank {rank} exceeded local memory: {words} > {self.local_memory_words}"
            )

    def charge_retry(self, rank: int, words: int, messages: int, *, backoff: int = 0) -> None:
        """Charge one rank's share of a *wasted* (re-driven) collective attempt.

        The traffic of a dropped or corrupted attempt really crossed the
        network, so it lands on the main ledgers through the normal charge
        paths — and is additionally tallied on the retry ledgers so the
        drift detector can separate it from fault-free traffic exactly.
        ``backoff`` records the exponential-backoff wait (in abstract units)
        the rank spent before the re-drive.
        """
        rank = self.check_rank(rank)
        self.charge_send(rank, words)
        self.charge_receive(rank, words)
        self.charge_messages(rank, messages)
        self.retry_words_sent[rank] += int(words)
        self.retry_words_received[rank] += int(words)
        self.retry_messages_sent[rank] += int(messages)
        if backoff < 0:
            raise MachineError("backoff units cannot be negative")
        self.backoff_units[rank] += int(backoff)

    def charge_delay(self, rank: int, units: int) -> None:
        """Record a latency spike of ``units`` abstract time units at ``rank``.

        Delays move no extra words (the payload arrives late but intact), so
        they live on their own ledger and never perturb the word counts the
        paper's bounds talk about.
        """
        rank = self.check_rank(rank)
        if units < 0:
            raise MachineError("delay units cannot be negative")
        self.delay_units[rank] += int(units)

    # -- fault consultation ---------------------------------------------------
    def consult_fault(self, kind: str, label: str, group: Sequence[int], attempt: int):
        """Hook the collectives call before charging an attempt.

        The base machine is fault-free: always ``None`` (proceed).  The
        :class:`~repro.resilience.machine.FaultyMachine` subclass matches the
        attempt against its seeded :class:`~repro.resilience.faults.FaultSchedule`
        and returns the matched spec, which the collective layer turns into a
        drop/corrupt re-drive, a delay charge, or a rank failure.
        """
        return None

    def log(self, record: CommunicationRecord) -> None:
        """Append a communication record to the trace."""
        self.records.append(record)
        record_label(record.label, len(record.group), record.words_per_rank)

    # -- summaries --------------------------------------------------------------
    @property
    def max_words_sent(self) -> int:
        """Critical-path bandwidth cost: maximum over ranks of words sent."""
        return int(self.words_sent.max())

    @property
    def max_words_received(self) -> int:
        """Maximum over ranks of words received."""
        return int(self.words_received.max())

    @property
    def max_words_communicated(self) -> int:
        """Maximum over ranks of ``max(sent, received)``.

        This is the quantity compared against the paper's per-processor cost
        expressions (sends and receives of a bucket collective are equal, so
        for the provided algorithms it coincides with :attr:`max_words_sent`).
        """
        return int(np.maximum(self.words_sent, self.words_received).max())

    @property
    def total_words_sent(self) -> int:
        """Total network traffic (sum over ranks of words sent)."""
        return int(self.words_sent.sum())

    @property
    def max_messages_sent(self) -> int:
        """Latency cost along the critical path: maximum over ranks of messages sent."""
        return int(self.messages_sent.max())

    @property
    def max_flops(self) -> int:
        """Maximum over ranks of arithmetic operations (load balance check)."""
        return int(self.flops.max())

    @property
    def max_storage(self) -> int:
        """Maximum over ranks of the storage high-water mark."""
        return int(self.storage_high_water.max())

    @property
    def max_retry_words_sent(self) -> int:
        """Maximum over ranks of words re-sent by re-driven collectives."""
        return int(self.retry_words_sent.max())

    @property
    def total_retry_words_sent(self) -> int:
        """Total network traffic attributable to re-driven collectives."""
        return int(self.retry_words_sent.sum())

    @property
    def max_delay_units(self) -> int:
        """Maximum over ranks of injected latency-spike units."""
        return int(self.delay_units.max())

    def summary(self) -> Dict[str, int]:
        """Dictionary of the headline per-machine statistics."""
        return {
            "n_procs": self.n_procs,
            "max_words_sent": self.max_words_sent,
            "max_words_received": self.max_words_received,
            "max_words_communicated": self.max_words_communicated,
            "total_words_sent": self.total_words_sent,
            "max_messages_sent": self.max_messages_sent,
            "max_flops": self.max_flops,
            "max_storage": self.max_storage,
            "max_retry_words_sent": self.max_retry_words_sent,
            "total_retry_words_sent": self.total_retry_words_sent,
            "max_delay_units": self.max_delay_units,
        }

    def reset(self) -> None:
        """Zero every counter and clear the trace."""
        self.words_sent[:] = 0
        self.words_received[:] = 0
        self.messages_sent[:] = 0
        self.flops[:] = 0
        self.storage_high_water[:] = 0
        self.retry_words_sent[:] = 0
        self.retry_words_received[:] = 0
        self.retry_messages_sent[:] = 0
        self.backoff_units[:] = 0
        self.delay_units[:] = 0
        self.records.clear()
