"""Algorithm 3: the parallel stationary-tensor MTTKRP.

Each processor owns one sub-tensor (the tensor is never communicated), gathers
the block rows of the input factor matrices it needs from its grid
hyperslices, performs a *local* MTTKRP, and participates in a Reduce-Scatter
that sums and redistributes the output block rows (Figure 3 of the paper).

The implementation is SPMD-by-simulation: per-rank buffers live in Python
dictionaries, the collectives of :mod:`repro.parallel.collectives` move the
data and charge the bucket-algorithm costs, and the final distributed output
can be reassembled and compared against a single-node reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.backend import Backend, get_backend
from repro.backend.parallel import parallel_map
from repro.core.kernels import local_mttkrp, mttkrp_flops
from repro.exceptions import DistributionError
from repro.parallel.collectives import all_gather, reduce_scatter
from repro.parallel.distribution import (
    DistributedMTTKRPOutput,
    LocalFactorBlock,
    StationaryDistribution,
)
from repro.parallel.grid import ProcessorGrid
from repro.parallel.machine import SimulatedMachine
from repro.tensor.dense import as_ndarray
from repro.utils.validation import check_mode, infer_rank as _infer_rank


@dataclass
class ParallelMTTKRPResult:
    """Result of a simulated parallel MTTKRP run.

    Attributes
    ----------
    output:
        The distributed output (reassemble with ``output.assemble()``).
    machine:
        The simulated machine holding per-rank communication counters.
    distribution:
        The data distribution object used (stationary or general).
    grid_dims:
        The processor grid extents used.
    """

    output: DistributedMTTKRPOutput
    machine: SimulatedMachine
    distribution: object
    grid_dims: Sequence[int]

    @property
    def max_words_communicated(self) -> int:
        """Critical-path words (max over ranks of max(sent, received))."""
        return self.machine.max_words_communicated

    def assemble(self) -> np.ndarray:
        """Assemble the global output matrix."""
        return self.output.assemble()


def stationary_mttkrp(
    tensor,
    factors: Sequence[Optional[np.ndarray]],
    mode: int,
    grid_dims: Sequence[int],
    *,
    machine: Optional[SimulatedMachine] = None,
    count_local_flops: bool = True,
    backend: Union[None, str, Backend] = None,
    threads: Optional[int] = None,
) -> ParallelMTTKRPResult:
    """Run Algorithm 3 on a simulated machine.

    Parameters
    ----------
    tensor:
        Dense ``N``-way tensor (held globally only to set up the distribution;
        the algorithm itself only touches per-rank shares).
    factors:
        One factor matrix per mode; entry for ``mode`` ignored.
    mode:
        Output mode ``n``.
    grid_dims:
        The ``N``-way processor grid ``(P_1, ..., P_N)``.
    machine:
        Optional pre-existing :class:`SimulatedMachine` (must have
        ``prod(grid_dims)`` processors); a fresh one is created otherwise.
    count_local_flops:
        Charge the atomic-multiply arithmetic cost of the local MTTKRPs to the
        machine's per-rank flop counters.
    backend:
        Execution backend for the per-rank local MTTKRPs
        (:func:`repro.backend.get_backend`); counted communication and
        storage are backend-independent.
    threads:
        Thread count for the per-rank local MTTKRPs (``None`` consults
        ``REPRO_THREADS``, default 1).  Each simulated rank's local kernel
        is an independent task writing its own output slot, and the
        machine's counters are charged serially afterwards — results and
        counted ledgers are bitwise identical for every thread count.

    Returns
    -------
    ParallelMTTKRPResult
    """
    data = as_ndarray(tensor)
    mode = check_mode(mode, data.ndim)
    exec_backend = get_backend(backend)
    grid = ProcessorGrid(grid_dims)
    if machine is None:
        machine = SimulatedMachine(grid.n_procs)
    elif machine.n_procs != grid.n_procs:
        raise DistributionError(
            f"machine has {machine.n_procs} processors but the grid needs {grid.n_procs}"
        )

    dist = StationaryDistribution(data.shape, _infer_rank(factors, mode), mode, grid)
    tensor_blocks, factor_blocks = dist.distribute(data, factors)

    # -- Line 4: All-Gather each input factor matrix's block row within its hyperslice.
    gathered_factors: Dict[int, List[Optional[np.ndarray]]] = {
        rank: [None] * data.ndim for rank in range(grid.n_procs)
    }
    for k in range(data.ndim):
        if k == mode:
            continue
        for pk in range(grid.dims[k]):
            group = grid.slice_group({k: pk})
            local = {rank: factor_blocks[k][rank].data for rank in group}
            gathered = all_gather(
                machine, group, local, axis=0, label=f"all_gather A^({k}) slice p_{k}={pk}"
            )
            for rank in group:
                gathered_factors[rank][k] = gathered[rank]

    # -- Line 6: local MTTKRP on each rank.  Each rank's kernel is a pure,
    # independent task, so the compute fans out on the thread executor;
    # machine counters are charged serially afterwards, keeping the counted
    # ledgers (and the outputs) bitwise independent of the thread count.
    rank_factors: Dict[int, List[Optional[np.ndarray]]] = {}
    for rank in range(grid.n_procs):
        rank_factors[rank] = [
            None if k == mode else gathered_factors[rank][k] for k in range(data.ndim)
        ]

    def run_local(rank: int) -> np.ndarray:
        return local_mttkrp(
            tensor_blocks[rank].data, rank_factors[rank], mode, backend=exec_backend
        )

    results = parallel_map(run_local, range(grid.n_procs), threads=threads)
    local_outputs: Dict[int, np.ndarray] = dict(enumerate(results))
    for rank in range(grid.n_procs):
        block = tensor_blocks[rank]
        if count_local_flops:
            machine.charge_flops(rank, mttkrp_flops(block.data.shape, dist.rank))
        _charge_stationary_storage(
            machine, rank, block.data, rank_factors[rank], local_outputs[rank]
        )

    # -- Line 7: Reduce-Scatter within each mode-n hyperslice.
    output = DistributedMTTKRPOutput(shape=(data.shape[mode], dist.rank))
    for pn in range(grid.dims[mode]):
        group = grid.slice_group({mode: pn})
        contributions = {rank: local_outputs[rank] for rank in group}
        scattered = reduce_scatter(
            machine, group, contributions, axis=0, label=f"reduce_scatter B slice p_{mode}={pn}"
        )
        for rank in group:
            rows = dist.factor_local_rows(mode, rank)
            output.pieces[rank] = LocalFactorBlock(
                rows=rows, cols=np.arange(dist.rank), data=scattered[rank]
            )

    return ParallelMTTKRPResult(
        output=output, machine=machine, distribution=dist, grid_dims=tuple(grid.dims)
    )


def _charge_stationary_storage(
    machine: SimulatedMachine,
    rank: int,
    subtensor: np.ndarray,
    local_factors: Sequence[Optional[np.ndarray]],
    local_output: np.ndarray,
) -> None:
    """Record the per-rank storage high-water mark (Eq. (16))."""
    words = int(subtensor.size) + int(local_output.size)
    for factor in local_factors:
        if factor is not None:
            words += int(factor.size)
    machine.charge_storage(rank, words)
