"""Distributed-memory MTTKRP algorithms on a simulated machine (Section V-C/D).

The paper's parallel machine model (P processors, private local memories,
communication by sends/receives, collectives costed with bucket algorithms)
is realised by :class:`repro.parallel.machine.SimulatedMachine`: the
algorithms are written in an SPMD style, really move numpy data between
rank-local buffers, and charge every collective the bucket-algorithm
bandwidth cost ``(q - 1) * w`` used in the paper's upper-bound analysis
(Eqs. (14) and (18)).

Provided algorithms:

* :func:`stationary_mttkrp` — Algorithm 3 (N-way processor grid, tensor never
  communicated);
* :func:`general_mttkrp` — Algorithm 4 ((N+1)-way grid, also partitions the
  rank dimension);
* :class:`DistributedDimtreeKernel` — the sweep-aware CP-ALS kernel of
  :mod:`repro.parallel.dimtree` (per-sweep gather caching + per-rank
  dimension trees), with its exact ledger predictor.
"""

from repro.parallel.machine import SimulatedMachine, CommunicationRecord
from repro.parallel.grid import ProcessorGrid
from repro.parallel.collectives import (
    all_gather,
    reduce_scatter,
    all_reduce,
    broadcast,
    bucket_all_gather_cost,
    bucket_reduce_scatter_cost,
)
from repro.parallel.distribution import (
    StationaryDistribution,
    GeneralDistribution,
    DistributedMTTKRPOutput,
)
from repro.parallel.stationary import stationary_mttkrp
from repro.parallel.general import general_mttkrp
from repro.parallel.dimtree import (
    DistributedDimtreeKernel,
    predicted_dimtree_ledger,
    predicted_dimtree_sweep_words,
)
from repro.parallel.grid_selection import (
    factorizations,
    choose_stationary_grid,
    choose_general_grid,
    ideal_stationary_grid,
    ideal_general_grid,
)

__all__ = [
    "SimulatedMachine",
    "CommunicationRecord",
    "ProcessorGrid",
    "all_gather",
    "reduce_scatter",
    "all_reduce",
    "broadcast",
    "bucket_all_gather_cost",
    "bucket_reduce_scatter_cost",
    "StationaryDistribution",
    "GeneralDistribution",
    "DistributedMTTKRPOutput",
    "stationary_mttkrp",
    "general_mttkrp",
    "DistributedDimtreeKernel",
    "predicted_dimtree_ledger",
    "predicted_dimtree_sweep_words",
    "factorizations",
    "choose_stationary_grid",
    "choose_general_grid",
    "ideal_stationary_grid",
    "ideal_general_grid",
]
