"""Distributed dimension-tree CP-ALS kernel on the simulated machine.

The exact parallel driver (Algorithm 3 via
:func:`~repro.parallel.stationary.stationary_mttkrp`) All-Gathers every input
factor for every mode update: ``N (N - 1)`` factor All-Gathers per ALS sweep.
Across a sweep those gathers are almost entirely redundant — a factor matrix
only changes when its own mode is solved.  This module's
:class:`DistributedDimtreeKernel` is the sweep-aware distributed kernel that
exploits both redundancies at once:

* **communication** — gathered factor block rows are cached per sweep and
  re-gathered only when the driver has replaced that factor (detected by
  array identity, exactly like the sequential engine), so the steady state
  issues *one* All-Gather per mode update instead of ``N - 1``;
* **computation** — each rank runs its own
  :class:`~repro.core.dimtree.DimensionTree` over its stationary sub-tensor,
  so local partial contractions are reused across the sweep's mode updates
  and the counted local flops drop by the same ``~N/2`` factor as in the
  sequential engine.

The output Reduce-Scatter per mode is unchanged from Algorithm 3 (the output
rows must still be summed and redistributed).

:func:`predicted_dimtree_ledger` replays every collective the kernel issues
— same groups, same block sizes, same bucket costs, same staleness schedule
— so the machine's word ledger matches it exactly (the tests assert ``==``,
PR-2 style).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.dimtree import DimensionTree, FactorGate, ModeSplit
from repro.core.sweep_kernel import SweepKernel
from repro.exceptions import DistributionError
from repro.parallel.collectives import all_gather, reduce_scatter
from repro.parallel.distribution import (
    DistributedMTTKRPOutput,
    LocalFactorBlock,
    StationaryDistribution,
)
from repro.parallel.grid import ProcessorGrid
from repro.parallel.machine import SimulatedMachine
from repro.tensor.dense import as_ndarray
from repro.utils.partition import partition_bounds
from repro.utils.validation import check_mode, check_rank, check_shape

#: Trace-label prefixes (the reconciliation tests split the ledger on these).
GATHER_LABEL = "dimtree all_gather"
REDUCE_LABEL = "dimtree reduce_scatter"


class DistributedDimtreeKernel(SweepKernel):
    """Sweep-aware distributed MTTKRP with cached gathers and per-rank trees.

    Registered in :data:`repro.cp.parallel_als.PARALLEL_KERNEL_NAMES` as
    ``"dimtree"`` (stationary distribution only — the tensor stays put, as in
    Algorithm 3).

    Parameters
    ----------
    grid_dims:
        The ``N``-way processor grid ``(P_1, ..., P_N)``.
    machine:
        Optional pre-existing :class:`SimulatedMachine` accumulating the run's
        communication; a fresh one is created otherwise.
    split:
        Split rule forwarded to every rank's :class:`DimensionTree`.
    invalidation, residual_tol:
        Staleness policy of the kernel-level
        :class:`~repro.core.dimtree.FactorGate` that governs the gather
        cache: ``"residual"`` skips the re-gather (and hence every
        dependent rank's tree invalidation, which follows the gathered
        blocks' identity) while a factor's accumulated relative drift stays
        within tolerance.  The default ``"exact"`` reproduces plain array
        identity, so the ledger still matches
        :func:`predicted_dimtree_ledger` word for word.
    """

    def __init__(
        self,
        grid_dims: Sequence[int],
        *,
        machine: Optional[SimulatedMachine] = None,
        split: Optional[ModeSplit] = None,
        invalidation: str = "exact",
        residual_tol: float = 1e-2,
    ) -> None:
        self.grid = ProcessorGrid(grid_dims)
        if machine is None:
            machine = SimulatedMachine(self.grid.n_procs)
        elif machine.n_procs != self.grid.n_procs:
            raise DistributionError(
                f"machine has {machine.n_procs} processors but the grid needs "
                f"{self.grid.n_procs}"
            )
        self.machine = machine
        self._split = split
        self._invalidation = invalidation
        self._residual_tol = float(residual_tol)
        self.gate: Optional[FactorGate] = None
        self.dist: Optional[StationaryDistribution] = None
        self._tensor: Optional[np.ndarray] = None
        self._trees: Dict[int, DimensionTree] = {}
        self._tensor_blocks = None
        self._gathered: Dict[int, Dict[int, np.ndarray]] = {}
        self._gathered_version: Dict[int, int] = {}
        self._pending_state: Optional[dict] = None

    # -- checkpoint/restore ---------------------------------------------------
    def capture_state(self) -> Optional[dict]:
        """Gate stamps, gathered blocks, and per-rank tree caches."""
        if self.gate is None:
            return None
        return {
            "kind": "parallel-dimtree",
            "gate": self.gate.capture_state(),
            "gathered": {
                k: {r: block.copy() for r, block in blocks.items()}
                for k, blocks in self._gathered.items()
            },
            "gathered_version": dict(self._gathered_version),
            "trees": {r: tree.capture_state() for r, tree in self._trees.items()},
        }

    def restore_state(self, state: Optional[dict]) -> None:
        """Stash a snapshot; applied inside the next :meth:`mttkrp` call."""
        self._pending_state = state

    def invalidate_caches(self) -> bool:
        if self.gate is None:
            return False
        self._gathered.clear()
        self._gathered_version.clear()
        for tree in self._trees.values():
            tree.invalidate_all()
        self.gate.invalidate_all()
        return True

    def _apply_pending(self, factors: Sequence[Optional[np.ndarray]]) -> None:
        state = self._pending_state
        self._pending_state = None
        self.gate.restore_state(state["gate"], factors)
        self._gathered = {
            k: {r: block.copy() for r, block in blocks.items()}
            for k, blocks in state["gathered"].items()
        }
        self._gathered_version = dict(state["gathered_version"])
        ndim = len(self.grid.dims)
        for r, tree in self._trees.items():
            # Per-rank trees key staleness on the gathered blocks' identity:
            # rebind each tree's gate to the restored blocks so its cached
            # partials keep hitting.
            local = [
                self._gathered[k][r] if k in self._gathered else None
                for k in range(ndim)
            ]
            tree.restore_state(state["trees"][r], local)

    def _ensure_setup(self, data: np.ndarray, rank: int) -> None:
        if self.dist is not None:
            if self._tensor is data and self.dist.rank == rank:
                return
            # New problem: rebuild the distribution, trees, and gather cache.
            self._gathered.clear()
            self._gathered_version.clear()
        if len(self.grid.dims) != data.ndim:
            raise DistributionError(
                f"grid must have one dimension per tensor mode: got "
                f"{len(self.grid.dims)} grid dims for a {data.ndim}-way tensor"
            )
        self.dist = StationaryDistribution(data.shape, rank, 0, self.grid)
        self._tensor = data
        self._tensor_blocks = self.dist.distribute_tensor(data)
        self._trees = {
            r: DimensionTree(self._tensor_blocks[r].data, split=self._split)
            for r in range(self.grid.n_procs)
        }
        self.gate = FactorGate(
            data.ndim,
            invalidation=self._invalidation,
            residual_tol=self._residual_tol,
        )

    def _gather_factor(self, k: int, factor: np.ndarray) -> None:
        """All-Gather factor ``k``'s block rows within each mode-``k`` hyperslice."""
        gathered: Dict[int, np.ndarray] = {}
        for pk in range(self.grid.dims[k]):
            group = self.grid.slice_group({k: pk})
            local = {
                r: factor[self.dist.factor_local_rows(k, r), :] for r in group
            }
            result = all_gather(
                self.machine,
                group,
                local,
                axis=0,
                label=f"{GATHER_LABEL} A^({k}) p_{k}={pk}",
            )
            gathered.update(result)
        self._gathered[k] = gathered

    def mttkrp(
        self, tensor, factors: Sequence[Optional[np.ndarray]], mode: int
    ) -> np.ndarray:
        data = as_ndarray(tensor)
        mode = check_mode(mode, data.ndim)
        rank = None
        for k, f in enumerate(factors):
            if k != mode and f is not None:
                rank = int(np.asarray(f).shape[1])
                break
        if rank is None:
            raise DistributionError("at least one input factor matrix is required")
        self._ensure_setup(data, rank)
        if self._pending_state is not None:
            self._apply_pending(factors)

        # -- re-gather only the factors the gate declares stale (under the
        #    default exact policy: exactly the ones the driver has replaced).
        for k in range(data.ndim):
            if k == mode:
                continue
            self.gate.register(k, factors[k])
            if self._gathered_version.get(k) != self.gate.versions[k]:
                self._gather_factor(k, np.asarray(factors[k]))
                self._gathered_version[k] = self.gate.versions[k]

        # -- local dimension-tree MTTKRP on every rank (counted flops).
        local_outputs: Dict[int, np.ndarray] = {}
        for r in range(self.grid.n_procs):
            tree = self._trees[r]
            local_factors: List[Optional[np.ndarray]] = [None] * data.ndim
            for k in range(data.ndim):
                if k != mode:
                    local_factors[k] = self._gathered[k][r]
            flops_before = tree.flops
            local_outputs[r] = tree.mttkrp(local_factors, mode)
            self.machine.charge_flops(r, tree.flops - flops_before)
            storage = int(self._tensor_blocks[r].data.size) + int(
                local_outputs[r].size
            )
            for k in range(data.ndim):
                if k != mode:
                    storage += int(self._gathered[k][r].size)
            storage += tree.cached_words()
            self.machine.charge_storage(r, storage)

        # -- output Reduce-Scatter within each mode hyperslice (Algorithm 3).
        output = DistributedMTTKRPOutput(shape=(data.shape[mode], rank))
        for pn in range(self.grid.dims[mode]):
            group = self.grid.slice_group({mode: pn})
            scattered = reduce_scatter(
                self.machine,
                group,
                {r: local_outputs[r] for r in group},
                axis=0,
                label=f"{REDUCE_LABEL} B mode {mode} p_{mode}={pn}",
            )
            for r in group:
                output.pieces[r] = LocalFactorBlock(
                    rows=self.dist.factor_local_rows(mode, r),
                    cols=np.arange(rank),
                    data=scattered[r],
                )
        return output.assemble()

    def local_flops(self) -> int:
        """Max over ranks of the counted local contraction flops."""
        return max((tree.flops for tree in self._trees.values()), default=0)


def predicted_dimtree_ledger(
    shape: Sequence[int],
    rank: int,
    grid_dims: Sequence[int],
    n_sweeps: int,
) -> np.ndarray:
    """Per-rank words sent (= received) the dimtree kernel charges over a run.

    Replays every collective of :class:`DistributedDimtreeKernel` under the
    ALS schedule (modes ``0..N-1`` per sweep, each factor replaced after its
    solve) symbolically: the gather-staleness bookkeeping, the per-hyperslice
    All-Gather block sizes, and the per-hyperslice Reduce-Scatter piece sizes
    are all reproduced from the bucket cost formulas alone, so the returned
    array equals the machine's ``words_sent`` (and ``words_received``)
    exactly — the PR-2-style "measured == predicted" reconciliation target.
    """
    shape = check_shape(shape, min_ndim=2)
    rank = check_rank(rank)
    grid = ProcessorGrid(grid_dims)
    if len(grid.dims) != len(shape):
        raise DistributionError(
            f"grid must have one dimension per tensor mode: got {len(grid.dims)} "
            f"grid dims for a {len(shape)}-way tensor"
        )
    dist = StationaryDistribution(shape, rank, 0, grid)
    words = np.zeros(grid.n_procs, dtype=np.int64)
    ndim = len(shape)
    versions = [0] * ndim
    gathered_at: Dict[int, int] = {}

    def charge_gather(k: int) -> None:
        for pk in range(grid.dims[k]):
            group = grid.slice_group({k: pk})
            w = max(len(dist.factor_local_rows(k, r)) for r in group) * rank
            words[group] += (len(group) - 1) * w

    def charge_reduce_scatter(mode: int) -> None:
        for pn in range(grid.dims[mode]):
            group = grid.slice_group({mode: pn})
            start, stop = dist.mode_partitions[mode][pn]
            piece_rows = max(b - a for a, b in partition_bounds(stop - start, len(group)))
            words[group] += (len(group) - 1) * piece_rows * rank

    for _ in range(int(n_sweeps)):
        for mode in range(ndim):
            for k in range(ndim):
                if k == mode:
                    continue
                if gathered_at.get(k) != versions[k]:
                    charge_gather(k)
                    gathered_at[k] = versions[k]
            charge_reduce_scatter(mode)
            versions[mode] += 1
    return words


def predicted_dimtree_sweep_words(
    shape: Sequence[int], rank: int, grid_dims: Sequence[int]
) -> int:
    """Max-per-rank words of one *steady-state* dimtree ALS sweep.

    The steady state (one All-Gather per mode update plus the ``N`` output
    Reduce-Scatters) holds from the second sweep on; the first sweep
    additionally gathers the ``N - 1`` input factors of mode 0 cold.
    """
    two = predicted_dimtree_ledger(shape, rank, grid_dims, 2)
    one = predicted_dimtree_ledger(shape, rank, grid_dims, 1)
    return int((two - one).max())
