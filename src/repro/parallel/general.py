"""Algorithm 4: the parallel general MTTKRP ((N+1)-way grid).

The general algorithm additionally partitions the rank (column) dimension
into ``P_0`` pieces.  One can think of it as running Algorithm 3 on each of
``P_0`` column blocks of the output with ``P / P_0`` processors each — the
price being that the tensor is now also communicated (an All-Gather along the
dimension-0 fiber, Line 3), the benefit being smaller factor-matrix
collectives.  It is more communication-efficient than Algorithm 3 when ``NR``
is large relative to ``I / P`` (Section V-D, Section VI-B).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.backend import Backend, get_backend
from repro.backend.parallel import parallel_map
from repro.core.kernels import local_mttkrp, mttkrp_flops
from repro.exceptions import DistributionError
from repro.parallel.collectives import all_gather, reduce_scatter
from repro.parallel.distribution import (
    DistributedMTTKRPOutput,
    GeneralDistribution,
    LocalFactorBlock,
)
from repro.parallel.grid import ProcessorGrid
from repro.parallel.machine import SimulatedMachine
from repro.parallel.stationary import ParallelMTTKRPResult, _infer_rank
from repro.tensor.dense import as_ndarray
from repro.utils.validation import check_mode


def general_mttkrp(
    tensor,
    factors: Sequence[Optional[np.ndarray]],
    mode: int,
    grid_dims: Sequence[int],
    *,
    machine: Optional[SimulatedMachine] = None,
    count_local_flops: bool = True,
    backend: Union[None, str, Backend] = None,
    threads: Optional[int] = None,
) -> ParallelMTTKRPResult:
    """Run Algorithm 4 on a simulated machine.

    Parameters
    ----------
    tensor:
        Dense ``N``-way tensor.
    factors:
        One factor matrix per mode; entry for ``mode`` ignored.
    mode:
        Output mode ``n``.
    grid_dims:
        The ``(N+1)``-way processor grid ``(P_0, P_1, ..., P_N)``; dimension 0
        partitions the rank dimension.  With ``P_0 = 1`` the algorithm
        performs exactly the same communication as Algorithm 3.
    machine:
        Optional pre-existing :class:`SimulatedMachine`.
    count_local_flops:
        Charge the atomic-multiply arithmetic cost of the local MTTKRPs.
    backend:
        Execution backend for the per-rank local MTTKRPs
        (:func:`repro.backend.get_backend`); counted communication and
        storage are backend-independent.
    threads:
        Thread count for the per-rank local MTTKRPs (``None`` consults
        ``REPRO_THREADS``, default 1); as in
        :func:`~repro.parallel.stationary.stationary_mttkrp`, results and
        counted ledgers are bitwise identical for every thread count.

    Returns
    -------
    ParallelMTTKRPResult
    """
    data = as_ndarray(tensor)
    mode = check_mode(mode, data.ndim)
    exec_backend = get_backend(backend)
    grid = ProcessorGrid(grid_dims)
    if len(grid.dims) != data.ndim + 1:
        raise DistributionError(
            f"general_mttkrp needs an (N+1)-way grid; got {len(grid.dims)} dims for N={data.ndim}"
        )
    if machine is None:
        machine = SimulatedMachine(grid.n_procs)
    elif machine.n_procs != grid.n_procs:
        raise DistributionError(
            f"machine has {machine.n_procs} processors but the grid needs {grid.n_procs}"
        )

    dist = GeneralDistribution(data.shape, _infer_rank(factors, mode), mode, grid)
    tensor_blocks, factor_blocks = dist.distribute(data, factors)

    # -- Line 3: All-Gather the sub-tensor along each dimension-0 fiber.
    gathered_tensors: Dict[int, np.ndarray] = {}
    seen_fibers = set()
    for rank in range(grid.n_procs):
        fiber = tuple(dist.tensor_fiber(rank))
        if fiber in seen_fibers:
            continue
        seen_fibers.add(fiber)
        local = {r: tensor_blocks[r].data for r in fiber}
        gathered = all_gather(machine, list(fiber), local, axis=0, label="all_gather X fiber")
        for r in fiber:
            ranges = tensor_blocks[r].ranges
            shape = tuple(stop - start for start, stop in ranges)
            gathered_tensors[r] = gathered[r].reshape(shape)

    # -- Line 5: All-Gather each factor block within its (p_0, p_k) slice.
    gathered_factors: Dict[int, List[Optional[np.ndarray]]] = {
        rank: [None] * data.ndim for rank in range(grid.n_procs)
    }
    for k in range(data.ndim):
        if k == mode:
            continue
        seen_groups = set()
        for rank in range(grid.n_procs):
            group = tuple(dist.factor_group(k, rank))
            if group in seen_groups:
                continue
            seen_groups.add(group)
            local = {r: factor_blocks[k][r].data for r in group}
            gathered = all_gather(
                machine, list(group), local, axis=0, label=f"all_gather A^({k}) block"
            )
            for r in group:
                gathered_factors[r][k] = gathered[r]

    # -- Line 7: local MTTKRP on each rank (columns restricted to T_{p_0}).
    # Pure independent tasks fan out on the thread executor; the machine's
    # counters are charged serially afterwards (see stationary_mttkrp).
    rank_factors: Dict[int, List[Optional[np.ndarray]]] = {}
    for rank in range(grid.n_procs):
        rank_factors[rank] = [
            None if k == mode else gathered_factors[rank][k] for k in range(data.ndim)
        ]

    def run_local(rank: int) -> np.ndarray:
        return local_mttkrp(
            gathered_tensors[rank], rank_factors[rank], mode, backend=exec_backend
        )

    results = parallel_map(run_local, range(grid.n_procs), threads=threads)
    local_outputs: Dict[int, np.ndarray] = dict(enumerate(results))
    for rank in range(grid.n_procs):
        local_tensor = gathered_tensors[rank]
        if count_local_flops:
            cols = len(dist.rank_columns(rank))
            machine.charge_flops(rank, mttkrp_flops(local_tensor.shape, max(cols, 1)))
        _charge_general_storage(
            machine, rank, local_tensor, rank_factors[rank], local_outputs[rank]
        )

    # -- Line 8: Reduce-Scatter within each (p_0, p_n) slice.
    output = DistributedMTTKRPOutput(shape=(data.shape[mode], dist.rank))
    seen_groups = set()
    scattered_pieces: Dict[int, np.ndarray] = {}
    for rank in range(grid.n_procs):
        group = tuple(dist.factor_group(mode, rank))
        if group in seen_groups:
            continue
        seen_groups.add(group)
        contributions = {r: local_outputs[r] for r in group}
        scattered = reduce_scatter(
            machine, list(group), contributions, axis=0, label="reduce_scatter B block"
        )
        scattered_pieces.update(scattered)
    for rank in range(grid.n_procs):
        rows = dist.factor_local_rows(mode, rank)
        cols = dist.rank_columns(rank)
        output.pieces[rank] = LocalFactorBlock(rows=rows, cols=cols, data=scattered_pieces[rank])

    return ParallelMTTKRPResult(
        output=output, machine=machine, distribution=dist, grid_dims=tuple(grid.dims)
    )


def _charge_general_storage(
    machine: SimulatedMachine,
    rank: int,
    local_tensor: np.ndarray,
    local_factors: Sequence[Optional[np.ndarray]],
    local_output: np.ndarray,
) -> None:
    """Record the per-rank storage high-water mark (Eq. (20))."""
    words = int(local_tensor.size) + int(local_output.size)
    for factor in local_factors:
        if factor is not None:
            words += int(factor.size)
    machine.charge_storage(rank, words)
