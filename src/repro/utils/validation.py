"""Argument validation helpers used across the package.

All public entry points of the library validate their arguments through these
helpers so error messages are consistent and informative.  Each helper returns
the (possibly normalised) value so call sites can write
``mode = check_mode(mode, ndim)``.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.exceptions import ParameterError, ShapeError


def infer_rank(factors: Sequence, mode: int) -> int:
    """Rank deduced from the first available input factor matrix.

    The one shared rank-inference helper: every MTTKRP entry point (dense
    einsum, sparse chunked, elementwise, parallel) that accepts ``None`` for
    the output mode's factor routes through here, so the error type
    (:class:`~repro.exceptions.ParameterError`, a :class:`ValueError`
    subclass) and message are identical everywhere.
    """
    for k, f in enumerate(factors):
        if k != mode and f is not None:
            return int(np.asarray(f).shape[1])
    raise ParameterError("at least one input factor matrix is required")


def check_positive_int(value, name: str, *, minimum: int = 1) -> int:
    """Validate that ``value`` is an integer >= ``minimum`` and return it.

    Parameters
    ----------
    value:
        Value to validate.  numpy integer scalars are accepted and converted.
    name:
        Name used in the error message.
    minimum:
        Smallest acceptable value (inclusive).
    """
    if isinstance(value, bool):
        raise ParameterError(f"{name} must be an integer, got bool {value!r}")
    if isinstance(value, (np.integer,)):
        value = int(value)
    if not isinstance(value, int):
        if isinstance(value, float) and value.is_integer():
            value = int(value)
        else:
            raise ParameterError(f"{name} must be an integer, got {value!r}")
    if value < minimum:
        raise ParameterError(f"{name} must be >= {minimum}, got {value}")
    return value


def check_mode(mode, ndim: int) -> int:
    """Validate a tensor mode index ``mode`` for an ``ndim``-way tensor.

    Modes are 0-based (``0 <= mode < ndim``).  Negative modes are supported
    with the usual Python convention (``-1`` is the last mode).
    """
    ndim = check_positive_int(ndim, "ndim", minimum=1)
    if isinstance(mode, (np.integer,)):
        mode = int(mode)
    if not isinstance(mode, int) or isinstance(mode, bool):
        raise ParameterError(f"mode must be an integer, got {mode!r}")
    if mode < 0:
        mode += ndim
    if not 0 <= mode < ndim:
        raise ParameterError(f"mode must be in [0, {ndim}), got {mode}")
    return mode


def check_rank(rank) -> int:
    """Validate a CP rank ``R >= 1``."""
    return check_positive_int(rank, "rank", minimum=1)


def check_shape(shape: Sequence[int], *, min_ndim: int = 1, name: str = "shape") -> Tuple[int, ...]:
    """Validate a tensor shape: a sequence of positive integers.

    Returns the shape as a tuple of Python ints.
    """
    try:
        shape = tuple(shape)
    except TypeError as exc:
        raise ShapeError(f"{name} must be a sequence of ints, got {shape!r}") from exc
    if len(shape) < min_ndim:
        raise ShapeError(f"{name} must have at least {min_ndim} dimensions, got {shape}")
    out = []
    for i, dim in enumerate(shape):
        out.append(check_positive_int(dim, f"{name}[{i}]", minimum=1))
    return tuple(out)


def check_probability_like(value, name: str, *, minimum: float = 0.0, maximum: float = 1.0) -> float:
    """Validate a float lying in ``[minimum, maximum]`` and return it."""
    try:
        value = float(value)
    except (TypeError, ValueError) as exc:
        raise ParameterError(f"{name} must be a float, got {value!r}") from exc
    if not (minimum <= value <= maximum):
        raise ParameterError(f"{name} must lie in [{minimum}, {maximum}], got {value}")
    return value


def check_factor_matrices(factors, shape: Sequence[int], rank: int, *, skip_mode=None):
    """Validate a collection of factor matrices against ``shape`` and ``rank``.

    Parameters
    ----------
    factors:
        Either a sequence with one matrix per mode, or (when ``skip_mode`` is
        given) one matrix per mode with the entry at ``skip_mode`` allowed to
        be ``None``.
    shape:
        Tensor shape the factor matrices must match (``factors[k]`` has
        ``shape[k]`` rows).
    rank:
        Number of columns every factor matrix must have.
    skip_mode:
        Optional mode whose factor matrix may be ``None`` / is ignored.

    Returns
    -------
    list of numpy.ndarray
        The validated factor matrices (the skipped entry, if any, is kept as
        given, possibly ``None``).
    """
    shape = check_shape(shape)
    rank = check_rank(rank)
    n_modes = len(shape)
    if len(factors) != n_modes:
        raise ShapeError(
            f"expected {n_modes} factor matrices (one per mode), got {len(factors)}"
        )
    validated = []
    for k, factor in enumerate(factors):
        if skip_mode is not None and k == skip_mode:
            validated.append(factor)
            continue
        arr = np.asarray(factor)
        if arr.ndim != 2:
            raise ShapeError(f"factor matrix for mode {k} must be 2-D, got ndim={arr.ndim}")
        if arr.shape[0] != shape[k] or arr.shape[1] != rank:
            raise ShapeError(
                f"factor matrix for mode {k} must have shape ({shape[k]}, {rank}), "
                f"got {arr.shape}"
            )
        validated.append(arr)
    return validated
