"""Small shared utilities: validation, index arithmetic, and 1-D partitions."""

from repro.utils.validation import (
    check_mode,
    check_positive_int,
    check_rank,
    check_shape,
    check_probability_like,
)
from repro.utils.indexing import (
    linear_index,
    multi_index,
    iter_multi_indices,
    block_ranges,
    block_starts,
    num_blocks,
)
from repro.utils.partition import (
    block_partition,
    partition_sizes,
    partition_bounds,
    owner_of_index,
    balanced_split,
)

__all__ = [
    "check_mode",
    "check_positive_int",
    "check_rank",
    "check_shape",
    "check_probability_like",
    "linear_index",
    "multi_index",
    "iter_multi_indices",
    "block_ranges",
    "block_starts",
    "num_blocks",
    "block_partition",
    "partition_sizes",
    "partition_bounds",
    "owner_of_index",
    "balanced_split",
]
