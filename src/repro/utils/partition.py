"""1-D block partitions used by the parallel data distributions.

Section V-C1 of the paper partitions each tensor dimension ``[I_k]`` into
``P_k`` contiguous parts ``S^(k)_{p_k}`` and (in Algorithm 4) the rank
dimension ``[R]`` into ``P_0`` parts ``T_{p_0}``.  These helpers implement the
standard balanced block partition: the first ``extent % parts`` parts get one
extra element, so part sizes differ by at most one.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.exceptions import ParameterError
from repro.utils.validation import check_positive_int


def partition_sizes(extent: int, parts: int) -> List[int]:
    """Sizes of the ``parts`` pieces of a balanced block partition of ``extent``.

    Sizes are non-increasing and differ by at most one.  ``parts`` may exceed
    ``extent``, in which case trailing parts are empty.
    """
    extent = check_positive_int(extent, "extent", minimum=0) if extent != 0 else 0
    parts = check_positive_int(parts, "parts")
    base, rem = divmod(extent, parts)
    return [base + (1 if i < rem else 0) for i in range(parts)]


def partition_bounds(extent: int, parts: int) -> List[Tuple[int, int]]:
    """Half-open index ranges ``(start, stop)`` of a balanced block partition."""
    sizes = partition_sizes(extent, parts)
    bounds = []
    start = 0
    for size in sizes:
        bounds.append((start, start + size))
        start += size
    return bounds


def block_partition(extent: int, parts: int) -> List[np.ndarray]:
    """Index sets (as integer arrays) of a balanced block partition of ``range(extent)``."""
    return [np.arange(start, stop) for start, stop in partition_bounds(extent, parts)]


def owner_of_index(index: int, extent: int, parts: int) -> int:
    """Which part of a balanced block partition owns global index ``index``."""
    if not 0 <= index < extent:
        raise ParameterError(f"index {index} out of range [0, {extent})")
    for part, (start, stop) in enumerate(partition_bounds(extent, parts)):
        if start <= index < stop:
            return part
    raise ParameterError("unreachable: index not owned by any part")  # pragma: no cover


def balanced_split(items: Sequence, parts: int) -> List[list]:
    """Split an arbitrary sequence into ``parts`` balanced contiguous chunks."""
    bounds = partition_bounds(len(items), parts)
    return [list(items[start:stop]) for start, stop in bounds]


def max_part_size(extent: int, parts: int) -> int:
    """Largest part size of the balanced block partition (``ceil(extent/parts)``)."""
    extent_i = int(extent)
    parts = check_positive_int(parts, "parts")
    return -(-extent_i // parts)
