"""Multi-index arithmetic for dense tensors and blocked loop nests.

The MTTKRP iteration space is ``[I_1] x ... x [I_N] x [R]``.  The sequential
algorithms sweep this space either element by element (Algorithm 1) or block
by block (Algorithm 2).  These helpers centralise the conversions between
linear and multi indices and the enumeration of block ranges so the algorithm
implementations stay readable.
"""

from __future__ import annotations

from itertools import product
from typing import Iterator, List, Sequence, Tuple

from repro.exceptions import ParameterError
from repro.utils.validation import check_positive_int, check_shape


def linear_index(index: Sequence[int], shape: Sequence[int]) -> int:
    """Convert a multi-index to a row-major (C-order) linear index."""
    shape = check_shape(shape)
    if len(index) != len(shape):
        raise ParameterError(
            f"index length {len(index)} does not match shape length {len(shape)}"
        )
    lin = 0
    for i, (idx, dim) in enumerate(zip(index, shape)):
        if not 0 <= idx < dim:
            raise ParameterError(f"index[{i}]={idx} out of range [0, {dim})")
        lin = lin * dim + idx
    return lin


def multi_index(linear: int, shape: Sequence[int]) -> Tuple[int, ...]:
    """Convert a row-major linear index back to a multi-index."""
    shape = check_shape(shape)
    total = 1
    for dim in shape:
        total *= dim
    if not 0 <= linear < total:
        raise ParameterError(f"linear index {linear} out of range [0, {total})")
    out = []
    for dim in reversed(shape):
        out.append(linear % dim)
        linear //= dim
    return tuple(reversed(out))


def iter_multi_indices(shape: Sequence[int]) -> Iterator[Tuple[int, ...]]:
    """Iterate over all multi-indices of ``shape`` in row-major order."""
    shape = check_shape(shape)
    return product(*(range(dim) for dim in shape))


def num_blocks(extent: int, block: int) -> int:
    """Number of blocks of size ``block`` covering ``extent`` (``ceil`` division)."""
    extent = check_positive_int(extent, "extent")
    block = check_positive_int(block, "block")
    return -(-extent // block)


def block_starts(extent: int, block: int) -> List[int]:
    """Starting offsets of the blocks of size ``block`` covering ``[0, extent)``."""
    extent = check_positive_int(extent, "extent")
    block = check_positive_int(block, "block")
    return list(range(0, extent, block))


def block_ranges(extent: int, block: int) -> List[Tuple[int, int]]:
    """Half-open ranges ``(start, stop)`` of blocks of size ``block`` over ``[0, extent)``.

    The final block may be smaller than ``block`` when ``block`` does not
    divide ``extent``; this mirrors the ``J_k = min(I_k, j_k + b - 1)`` clamp
    in Algorithm 2 of the paper.
    """
    return [(start, min(extent, start + block)) for start in block_starts(extent, block)]


def iter_block_multi_ranges(
    shape: Sequence[int], blocks: Sequence[int]
) -> Iterator[Tuple[Tuple[int, int], ...]]:
    """Iterate over Cartesian products of per-mode block ranges.

    Parameters
    ----------
    shape:
        Extent of each mode.
    blocks:
        Block size for each mode (may differ per mode).

    Yields
    ------
    tuple of (start, stop) pairs, one per mode, in row-major block order.
    """
    shape = check_shape(shape)
    if len(blocks) != len(shape):
        raise ParameterError("blocks must have one entry per mode")
    per_mode = [block_ranges(dim, check_positive_int(b, "block")) for dim, b in zip(shape, blocks)]
    return product(*per_mode)
