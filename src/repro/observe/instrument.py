"""Hook surface of the observability layer — the only module hot paths import.

Every counted subsystem (the dimension-tree engine, the fused sampler cache,
the einsum path cache, the samplers, the simulated machine's collectives)
calls the free functions below at the exact points where it already
increments its own ledgers.  The functions share one rule: **when no trace
session is active they return immediately** — a module-global attribute load
and an ``is None`` test, nothing else.  No dictionary is built, no span is
touched, no metric is looked up, so instrumented code paths are bitwise
identical to their un-instrumented behaviour (results *and* counted ledgers)
and the disabled overhead sits below wall-clock measurement noise (a tier-1
test bounds it).

This module is a dependency leaf: it imports nothing from the rest of the
package (and nothing beyond the standard library), so any module — including
:mod:`repro.core` and :mod:`repro.parallel` — can import it without layering
concerns.  The session object it dispatches to is installed by
:mod:`repro.observe.tracer` (``start_trace`` / ``tracing``).
"""

from __future__ import annotations

from typing import Any, Optional


class _State:
    """Holder for the active session (an attribute load is the fast path)."""

    __slots__ = ("session",)

    def __init__(self) -> None:
        self.session: Optional[Any] = None


#: The one process-wide slot a :class:`~repro.observe.tracer.TraceSession`
#: occupies while active.  Hot paths read ``_STATE.session`` once per hook
#: call; ``None`` (the default) short-circuits everything.
_STATE = _State()


def active_session():
    """The active :class:`~repro.observe.tracer.TraceSession`, or ``None``."""
    return _STATE.session


def is_tracing() -> bool:
    """Whether a trace session is currently installed."""
    return _STATE.session is not None


def add_cost(flops: int = 0, words: int = 0) -> None:
    """Accrue counted arithmetic/data-movement cost to the innermost open span.

    Called by the counted kernels at the same points they bump their own
    ledgers (tree contractions, sampler builds/draws, estimator evaluation),
    with the *same* quantities — so a span's totals equal the sum of the
    ledger increments that executed inside it, and the drift detector can
    hold them against the symbolic cost models.
    """
    session = _STATE.session
    if session is not None:
        session._add_cost(flops, words)


def add_comm(words: int = 0, messages: int = 0) -> None:
    """Accrue simulated-machine communication to the innermost open span.

    Kept separate from :func:`add_cost` words: ``words`` there is the flat
    memory-traffic model of the sequential kernels, ``comm_words`` here is
    network words of the simulated machine (summed over the participating
    ranks), which the parallel drift detector compares against the
    collective-replay ledgers.
    """
    session = _STATE.session
    if session is not None:
        session._add_comm(words, messages)


def inc(name: str, value: int = 1) -> None:
    """Increment counter ``name`` on the active session's metrics registry."""
    session = _STATE.session
    if session is not None:
        session.metrics.inc(name, value)


def observe_value(name: str, value: float) -> None:
    """Record ``value`` into histogram ``name`` on the active session."""
    session = _STATE.session
    if session is not None:
        session.metrics.observe(name, value)


def annotate(**attrs: Any) -> None:
    """Attach attributes to the innermost open span (no-op when disabled).

    Used by kernels to report per-call data the driver cannot know — e.g. the
    fused kernel stamps ``n_draws`` / ``distinct_rows`` onto the enclosing
    ``"mode"`` span so the drift detector can replay the sampled cost model.
    """
    session = _STATE.session
    if session is not None:
        session._annotate(attrs)


def record_collective(
    kind: str, label: str, group_size: int, words_per_rank: int, messages_per_rank: int
) -> None:
    """Tally one charged collective: span comm accrual + per-kind counters.

    ``words_per_rank`` is the bucket cost every participating rank was
    charged, so the span (and the ``comm.<kind>.words`` counter) accrues
    ``words_per_rank * group_size`` — the total words sent across the group,
    which equals the sum over ranks of the machine's ``words_sent`` ledger
    and therefore of the symbolic collective-replay predictions.
    """
    session = _STATE.session
    if session is None:
        return
    total_words = int(words_per_rank) * int(group_size)
    total_messages = int(messages_per_rank) * int(group_size)
    session._add_comm(total_words, total_messages)
    metrics = session.metrics
    metrics.inc(f"comm.{kind}.calls")
    metrics.inc(f"comm.{kind}.words", total_words)
    metrics.inc(f"comm.{kind}.messages", total_messages)


def record_label(label: str, group_size: int, words_per_rank: int) -> None:
    """Tally one logged :class:`~repro.parallel.machine.CommunicationRecord` by label.

    Every record the machine logs lands here, keyed by its phase label —
    the per-phase word attribution the parallel reconciliation splits on.
    Unlabeled records are tallied under ``<unlabeled>`` so a test can assert
    there are none in a traced parallel ALS run.
    """
    session = _STATE.session
    if session is None:
        return
    key = label if label else "<unlabeled>"
    metrics = session.metrics
    metrics.inc(f"comm.label.{key}.calls")
    metrics.inc(f"comm.label.{key}.words", int(words_per_rank) * int(group_size))
