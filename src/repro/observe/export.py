"""Exporters: Chrome trace-event JSON and the sorted-key metrics snapshot.

:func:`chrome_trace` renders a :class:`~repro.observe.tracer.TraceSession`
as the Chrome trace-event format (the ``{"traceEvents": [...]}`` JSON object
Perfetto and ``chrome://tracing`` load directly): every span becomes one
complete (``"ph": "X"``) event with microsecond ``ts``/``dur``, and the
accrued ledgers ride along in ``args`` so the flop/word attribution is
visible in the viewer's slice panel.  :func:`validate_chrome_trace` is the
schema check CI runs against exported files (required per-event keys
``ph`` / ``ts`` / ``name`` / ``pid``).
"""

from __future__ import annotations

import json
from typing import Any

from repro.observe.tracer import TraceSession

#: Keys every exported trace event must carry (the CI schema contract).
CHROME_TRACE_REQUIRED_KEYS = ("ph", "ts", "name", "pid")


def _jsonable(value: Any) -> Any:
    """Best-effort plain-JSON form of a span attribute."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    try:
        return int(value)
    except (TypeError, ValueError):
        pass
    try:
        return float(value)
    except (TypeError, ValueError):
        return str(value)


def chrome_trace(session: TraceSession) -> dict:
    """The session as a Chrome trace-event JSON object (Perfetto-loadable)."""
    events = []
    for span in session.spans:
        args = {key: _jsonable(value) for key, value in span.attrs.items()}
        args.update(
            flops=span.flops,
            words=span.words,
            comm_words=span.comm_words,
            messages=span.messages,
        )
        events.append(
            {
                "name": span.name,
                "ph": "X",
                "pid": 0,
                "tid": 0,
                "ts": span.start * 1e6,
                "dur": span.duration * 1e6,
                "args": args,
            }
        )
    events.sort(key=lambda event: (event["ts"], -event["dur"]))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"metrics": session.metrics.snapshot()},
    }


def validate_chrome_trace(payload: Any) -> None:
    """Raise ``ValueError`` unless ``payload`` is a valid trace-event object.

    Checks the structural contract CI enforces on exported traces: a dict
    with a ``traceEvents`` list whose every event is a dict carrying the
    required keys (:data:`CHROME_TRACE_REQUIRED_KEYS`) with sane types —
    string ``ph``/``name``, numeric non-negative ``ts``, integer ``pid`` —
    and, for complete (``"X"``) events, a numeric non-negative ``dur``.
    """
    if not isinstance(payload, dict):
        raise ValueError(f"trace must be a JSON object, got {type(payload).__name__}")
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace must carry a 'traceEvents' list")
    for position, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"traceEvents[{position}] is not an object")
        missing = [key for key in CHROME_TRACE_REQUIRED_KEYS if key not in event]
        if missing:
            raise ValueError(f"traceEvents[{position}] is missing keys {missing}")
        if not isinstance(event["ph"], str) or not event["ph"]:
            raise ValueError(f"traceEvents[{position}]: 'ph' must be a non-empty string")
        if not isinstance(event["name"], str) or not event["name"]:
            raise ValueError(f"traceEvents[{position}]: 'name' must be a non-empty string")
        if not isinstance(event["ts"], (int, float)) or event["ts"] < 0:
            raise ValueError(f"traceEvents[{position}]: 'ts' must be a non-negative number")
        if not isinstance(event["pid"], int):
            raise ValueError(f"traceEvents[{position}]: 'pid' must be an integer")
        if event["ph"] == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(
                    f"traceEvents[{position}]: complete events need a non-negative 'dur'"
                )


def write_chrome_trace(session: TraceSession, path) -> dict:
    """Validate, write (sorted keys), and return the session's Chrome trace."""
    payload = chrome_trace(session)
    validate_chrome_trace(payload)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return payload


def metrics_snapshot(session: TraceSession) -> dict:
    """The session's sorted-key metrics snapshot (counters + histograms)."""
    return session.metrics.snapshot()


def write_metrics_snapshot(session: TraceSession, path) -> dict:
    """Write (sorted keys) and return the session's metrics snapshot."""
    snapshot = metrics_snapshot(session)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return snapshot
