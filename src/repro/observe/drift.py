"""Measured-vs-modelled drift detection over traced ALS runs.

The repo's discipline is that counted ledgers equal symbolic cost-model
replays *exactly* (``==``, not ``<=``).  Until now that invariant lived in
hand-written per-PR tests; this module turns it into a runtime check over
any traced run, generalizing the reconciliation pattern of
:mod:`repro.sketch.parallel.reconcile`:

* :func:`dimtree_drift` — per-sweep traced flops/words of the exact
  dimension-tree kernel vs :func:`repro.core.dimtree.dimtree_sweep_cost_sequence`;
* :func:`fused_drift` — per-sweep traced flops/words of the fused sampled
  kernel vs :func:`repro.costmodel.fused_model.sampled_dimtree_sweep_cost`,
  fed the per-mode ``n_draws`` / ``distinct_rows`` the kernel annotated onto
  its ``"mode"`` spans;
* :func:`parallel_words_drift` — per-sweep traced collective words
  (``comm_words``) of a distributed run vs the per-rank ledger replays
  (:func:`repro.parallel.dimtree.predicted_dimtree_ledger` and friends),
  summed over ranks.

Cost models are imported lazily inside the checkers so the observe package
stays a dependency leaf importable from anywhere in the stack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.observe.tracer import SpanRecord, TraceSession

__all__ = [
    "DriftRecord",
    "DriftReport",
    "dimtree_drift",
    "fused_drift",
    "parallel_words_drift",
    "retry_ledger_drift",
]


@dataclass(frozen=True)
class DriftRecord:
    """One measured-vs-modelled comparison: a phase, a quantity, two numbers."""

    phase: str
    quantity: str
    measured: int
    modelled: int

    @property
    def drift(self) -> int:
        """Absolute discrepancy ``measured - modelled`` (zero means agreement)."""
        return self.measured - self.modelled

    @property
    def rel_drift(self) -> float:
        """Relative discrepancy against the model (0.0 when both are zero)."""
        if self.modelled == 0:
            return 0.0 if self.measured == 0 else float("inf")
        return self.drift / self.modelled

    @property
    def ok(self) -> bool:
        """Whether measured equals modelled exactly."""
        return self.measured == self.modelled

    def to_dict(self) -> dict:
        return {
            "phase": self.phase,
            "quantity": self.quantity,
            "measured": self.measured,
            "modelled": self.modelled,
            "drift": self.drift,
            "rel_drift": self.rel_drift,
        }


@dataclass
class DriftReport:
    """All comparisons of one checker run, with an exactness verdict."""

    kernel: str
    records: List[DriftRecord] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether every compared quantity matched its model exactly."""
        return all(record.ok for record in self.records)

    @property
    def max_abs_drift(self) -> int:
        """Largest absolute discrepancy across the records (0 when empty)."""
        return max((abs(record.drift) for record in self.records), default=0)

    def drifted(self) -> List[DriftRecord]:
        """The records where measured and modelled disagree."""
        return [record for record in self.records if not record.ok]

    def to_dict(self) -> dict:
        return {
            "kernel": self.kernel,
            "ok": self.ok,
            "max_abs_drift": self.max_abs_drift,
            "records": [record.to_dict() for record in self.records],
        }

    def raise_on_drift(self) -> "DriftReport":
        """Return self if exact, else raise ``AssertionError`` listing the drift."""
        bad = self.drifted()
        if bad:
            lines = ", ".join(
                f"{r.phase}.{r.quantity}: measured {r.measured} != modelled {r.modelled}"
                for r in bad
            )
            raise AssertionError(f"{self.kernel} drift: {lines}")
        return self


def _sweep_spans(session: TraceSession) -> List[SpanRecord]:
    """The session's ``"sweep"`` spans in execution order (by span id)."""
    return sorted(session.spans_named("sweep"), key=lambda span: span.span_id)


def dimtree_drift(
    session: TraceSession,
    shape: Sequence[int],
    rank: int,
    *,
    split=None,
    cache: bool = True,
) -> DriftReport:
    """Per-sweep flops/words of a traced exact dimtree run vs the replay.

    Every ``"sweep"`` span's accrued flops and words are held against the
    symbolic replay of the same sweep index
    (:func:`repro.core.dimtree.dimtree_sweep_cost_sequence`), so cold-cache
    first sweeps and any schedule transient are modelled exactly — zero
    drift is the expected outcome on every sweep, not just steady state.
    """
    from repro.core.dimtree import dimtree_sweep_cost_sequence

    sweeps = _sweep_spans(session)
    report = DriftReport(kernel="dimtree")
    if not sweeps:
        return report
    modelled = dimtree_sweep_cost_sequence(
        shape, rank, len(sweeps), split=split, cache=cache
    )
    for index, (span, model) in enumerate(zip(sweeps, modelled)):
        phase = f"sweep[{index}]"
        report.records.append(
            DriftRecord(phase, "flops", span.flops, model.flops)
        )
        report.records.append(
            DriftRecord(phase, "words", span.words, model.words)
        )
    return report


def fused_drift(
    session: TraceSession,
    shape: Sequence[int],
    rank: int,
    *,
    distribution: str = "tree-leverage",
    split=None,
) -> DriftReport:
    """Per-sweep flops/words of a traced fused sampled run vs the replay.

    The fused kernel annotates each ``"mode"`` span with the ``n_draws`` and
    ``distinct_rows`` of its call — the only data-dependent sizes of the
    model — so each sweep can be replayed through
    :func:`repro.costmodel.fused_model.sampled_dimtree_sweep_cost`
    (``first_sweep=True`` for the cold sweep) without touching the kernel's
    draw log.
    """
    from repro.costmodel.fused_model import sampled_dimtree_sweep_cost

    report = DriftReport(kernel="sampled-dimtree")
    for index, span in enumerate(_sweep_spans(session)):
        modes = sorted(
            (
                child
                for child in session.children_of(span.span_id)
                if child.name == "mode"
            ),
            key=lambda child: child.span_id,
        )
        if len(modes) != len(shape):
            raise ValueError(
                f"sweep[{index}] has {len(modes)} mode spans, expected {len(shape)}"
            )
        draws = {child.attrs.get("n_draws") for child in modes}
        if len(draws) != 1 or None in draws:
            raise ValueError(
                f"sweep[{index}] mode spans lack a consistent n_draws annotation"
            )
        distinct = [child.attrs.get("distinct_rows") for child in modes]
        if any(value is None for value in distinct):
            raise ValueError(
                f"sweep[{index}] mode spans lack distinct_rows annotations"
            )
        model = sampled_dimtree_sweep_cost(
            shape,
            rank,
            draws.pop(),
            distinct,
            distribution=distribution,
            split=split,
            first_sweep=index == 0,
        )
        phase = f"sweep[{index}]"
        report.records.append(DriftRecord(phase, "flops", span.flops, model.flops))
        report.records.append(DriftRecord(phase, "words", span.words, model.words))
    return report


def parallel_words_drift(
    session: TraceSession,
    shape: Sequence[int],
    rank: int,
    grid_dims: Sequence[int],
    *,
    kernel: str = "dimtree",
) -> DriftReport:
    """Per-sweep collective words of a traced distributed run vs the ledger replay.

    Each ``"sweep"`` span's ``comm_words`` (total words sent across the
    group, accrued at the collective charge point) is compared against the
    increment of the matching per-rank ledger prediction summed over ranks:
    ``ledger(sweeps=i+1).sum() - ledger(sweeps=i).sum()``.  Supported
    kernels: ``"dimtree"``
    (:func:`repro.parallel.dimtree.predicted_dimtree_ledger`) and
    ``"sampled-dimtree"``
    (:func:`repro.sketch.parallel.sampled_dimtree.predicted_sampled_dimtree_ledger`).
    """
    if kernel == "dimtree":
        from repro.parallel.dimtree import predicted_dimtree_ledger as ledger_fn
    elif kernel == "sampled-dimtree":
        from repro.sketch.parallel.sampled_dimtree import (
            predicted_sampled_dimtree_ledger as ledger_fn,
        )
    else:
        raise ValueError(
            f"no ledger replay for kernel {kernel!r} "
            "(supported: 'dimtree', 'sampled-dimtree')"
        )

    report = DriftReport(kernel=f"parallel-{kernel}")
    previous_total = 0
    for index, span in enumerate(_sweep_spans(session)):
        total = int(ledger_fn(shape, rank, grid_dims, index + 1).sum())
        report.records.append(
            DriftRecord(
                f"sweep[{index}]", "comm_words", span.comm_words, total - previous_total
            )
        )
        previous_total = total
    return report


def retry_ledger_drift(machine, baseline) -> DriftReport:
    """Ledger-under-faults vs fault-free ledger + charged retries, per rank.

    The exactness claim of the retrying collectives (ISSUE 10): every word a
    faulted run sends is either a word the fault-free run sends or a word
    charged to the retry ledgers — nothing double-counted, nothing lost.  So
    for every rank ``r``::

        machine.words_sent[r] == baseline_words_sent[r] + machine.retry_words_sent[r]

    and likewise for words received and messages sent.  ``machine`` is the
    (possibly faulted) :class:`~repro.parallel.machine.SimulatedMachine` of
    the run under test; ``baseline`` is either the machine of an identical
    fault-free run or a bare per-rank predicted ``words_sent`` array (e.g.
    :func:`repro.parallel.dimtree.predicted_dimtree_ledger`), in which case
    only the sent-words invariant is checked.
    """
    report = DriftReport(kernel="retry-ledger")
    if hasattr(baseline, "words_sent"):
        if baseline.n_procs != machine.n_procs:
            raise ValueError(
                f"baseline machine has {baseline.n_procs} ranks, "
                f"faulted machine has {machine.n_procs}"
            )
        quantities = [
            ("words_sent", baseline.words_sent, machine.words_sent, machine.retry_words_sent),
            (
                "words_received",
                baseline.words_received,
                machine.words_received,
                machine.retry_words_received,
            ),
            (
                "messages_sent",
                baseline.messages_sent,
                machine.messages_sent,
                machine.retry_messages_sent,
            ),
        ]
    else:
        import numpy as np

        base = np.asarray(baseline)
        if base.shape != (machine.n_procs,):
            raise ValueError(
                f"baseline ledger must have shape ({machine.n_procs},), got {base.shape}"
            )
        quantities = [("words_sent", base, machine.words_sent, machine.retry_words_sent)]
    for name, base, measured, retries in quantities:
        for r in range(machine.n_procs):
            report.records.append(
                DriftRecord(
                    f"rank[{r}]",
                    name,
                    int(measured[r]),
                    int(base[r]) + int(retries[r]),
                )
            )
    return report
