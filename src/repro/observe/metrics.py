"""Counters and histograms of the observability layer.

A :class:`MetricsRegistry` is owned by each
:class:`~repro.observe.tracer.TraceSession`: counters accumulate integer
tallies (cache hits, draws, collective words), histograms accumulate raw
observations (per-span wall-clock seconds) and report order-statistic
summaries (p50/p99 — the signals ROADMAP open item 1 asks for).  Everything
is plain Python over sorted copies; no dependency beyond the standard
library, and :meth:`MetricsRegistry.snapshot` renders a deterministic
sorted-key dictionary ready for ``json.dumps(..., sort_keys=True)``.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Mapping, Sequence


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile of ``values`` (``q`` in ``[0, 100]``).

    Matches ``numpy.percentile``'s default (linear) method so the reported
    p50/p99 agree with what a numpy consumer would compute, without making
    the zero-dependency layer import numpy.
    """
    if not values:
        raise ValueError("percentile of an empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    ordered = sorted(float(v) for v in values)
    if len(ordered) == 1:
        return ordered[0]
    position = (len(ordered) - 1) * (q / 100.0)
    lower = int(position)
    upper = min(lower + 1, len(ordered) - 1)
    fraction = position - lower
    return ordered[lower] * (1.0 - fraction) + ordered[upper] * fraction


def hit_rate(hits: float, misses: float) -> float:
    """``hits / (hits + misses)`` with an empty-denominator guard (``0.0``)."""
    total = hits + misses
    return float(hits) / total if total > 0 else 0.0


class MetricsRegistry:
    """Named counters and histograms with a deterministic snapshot.

    Recording is thread-safe: the workspace pool is borrowed from (and
    counters bumped) by chunk tasks on the shared thread executor, and the
    unlocked ``dict`` read-modify-write of ``inc`` would lose increments
    under that interleaving.  One lock covers both maps; reads take it too so
    a snapshot never observes a half-applied increment.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}
        self._histograms: Dict[str, List[float]] = {}
        self._lock = threading.Lock()

    # -- recording ----------------------------------------------------------
    def inc(self, name: str, value: int = 1) -> None:
        """Add ``value`` to counter ``name`` (created at zero on first use)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def observe(self, name: str, value: float) -> None:
        """Append ``value`` to histogram ``name``."""
        with self._lock:
            self._histograms.setdefault(name, []).append(float(value))

    # -- reading ------------------------------------------------------------
    def counter(self, name: str) -> int:
        """Current value of counter ``name`` (``0`` if never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    def counters(self) -> Mapping[str, int]:
        """All counters, sorted by name."""
        with self._lock:
            return dict(sorted(self._counters.items()))

    def histogram(self, name: str) -> List[float]:
        """The raw observations of histogram ``name`` (empty if absent)."""
        with self._lock:
            return list(self._histograms.get(name, []))

    def histogram_summary(self, name: str) -> Dict[str, float]:
        """Count/sum/min/max/p50/p99 summary of histogram ``name``."""
        with self._lock:
            values = list(self._histograms.get(name, ()))
        if not values:
            return {"count": 0}
        return {
            "count": len(values),
            "sum": float(sum(values)),
            "min": min(values),
            "max": max(values),
            "p50": percentile(values, 50.0),
            "p99": percentile(values, 99.0),
        }

    def snapshot(self) -> dict:
        """Sorted-key dictionary of every counter and histogram summary."""
        with self._lock:
            histogram_names = sorted(self._histograms)
            counters = dict(sorted(self._counters.items()))
        return {
            "counters": counters,
            "histograms": {
                name: self.histogram_summary(name) for name in histogram_names
            },
        }
