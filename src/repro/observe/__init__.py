"""repro.observe — disabled-by-default tracing, metrics, and drift detection.

The observability layer of the reproduction: a context-var span tracer
(:class:`~repro.observe.tracer.trace` /
:func:`~repro.observe.tracer.tracing`) that attributes wall-clock time *and*
the counted flop/word/message ledgers to named phases, a
:class:`~repro.observe.metrics.MetricsRegistry` of counters and histograms
fed by the hot paths (dimtree partial-contraction cache, residual gate,
fused sampler cache, einsum path cache, samplers, simulated collectives),
Chrome trace-event / metrics-snapshot exporters, and drift detectors that
hold traced spans against the symbolic cost models at runtime.

Everything is off until a session is installed; with tracing disabled every
hook is a module-global load plus an ``is None`` test, so instrumented code
is bitwise identical to its un-instrumented behaviour.
"""

from repro.observe.drift import (
    DriftRecord,
    DriftReport,
    dimtree_drift,
    fused_drift,
    parallel_words_drift,
    retry_ledger_drift,
)
from repro.observe.export import (
    CHROME_TRACE_REQUIRED_KEYS,
    chrome_trace,
    metrics_snapshot,
    validate_chrome_trace,
    write_chrome_trace,
    write_metrics_snapshot,
)
from repro.observe.instrument import (
    active_session,
    add_comm,
    add_cost,
    annotate,
    inc,
    is_tracing,
    observe_value,
    record_collective,
    record_label,
)
from repro.observe.metrics import MetricsRegistry, hit_rate, percentile
from repro.observe.tracer import (
    SpanRecord,
    TraceSession,
    median_time,
    start_trace,
    stop_trace,
    trace,
    tracing,
)

__all__ = [
    "CHROME_TRACE_REQUIRED_KEYS",
    "DriftRecord",
    "DriftReport",
    "MetricsRegistry",
    "SpanRecord",
    "TraceSession",
    "active_session",
    "add_comm",
    "add_cost",
    "annotate",
    "chrome_trace",
    "dimtree_drift",
    "fused_drift",
    "hit_rate",
    "inc",
    "is_tracing",
    "median_time",
    "metrics_snapshot",
    "observe_value",
    "parallel_words_drift",
    "percentile",
    "record_collective",
    "record_label",
    "retry_ledger_drift",
    "start_trace",
    "stop_trace",
    "trace",
    "tracing",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_metrics_snapshot",
]
