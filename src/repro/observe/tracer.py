"""Context-var span tracer: wall-clock phases carrying the counted ledgers.

A :class:`TraceSession` (installed with :func:`start_trace` / the
:func:`tracing` context manager) records a tree of :class:`SpanRecord`
phases.  Spans nest through a :class:`contextvars.ContextVar`, so the
"innermost open span" is scoped correctly across generators and nested
drivers; each span accrues

* wall-clock time (``perf_counter`` by default; injectable for tests),
* the counted flops/words the kernels' ledgers incremented inside it
  (:func:`repro.observe.instrument.add_cost`),
* the simulated machine's collective words/messages
  (:func:`~repro.observe.instrument.add_comm`), kept separate from the flat
  memory-model words so the parallel drift detector compares like with like.

Costs roll up: when a span closes, its (inclusive) totals are added to its
parent, so a ``"sweep"`` span carries everything its ``"mode"`` children
counted.  Closing a span also feeds a ``span.<name>.seconds`` histogram —
p50/p99 sweep latency falls out of the metrics snapshot for free.

With no session active, :class:`trace` is a no-op context manager whose
enter/exit do one module-global load each; a tier-1 test bounds the
disabled overhead.
"""

from __future__ import annotations

import statistics
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.observe.instrument import _STATE
from repro.observe.metrics import MetricsRegistry

#: The innermost open span of the current context (``None`` outside spans).
_CURRENT_SPAN: ContextVar[Optional["_OpenSpan"]] = ContextVar(
    "repro_observe_current_span", default=None
)


@dataclass
class SpanRecord:
    """One closed span: a named phase with timing and accrued ledgers.

    Attributes
    ----------
    name, attrs:
        Phase name (e.g. ``"sweep"``, ``"mode"``) and attributes — the
        keyword arguments of :class:`trace` plus anything the kernels
        attached via :func:`~repro.observe.instrument.annotate`.
    span_id, parent_id, depth:
        Tree structure (ids are session-unique, root spans have
        ``parent_id = None``).
    start, duration:
        Seconds since the session started / span wall-clock length.
    flops, words:
        Counted kernel arithmetic and flat-model data movement accrued
        inside the span (children included).
    comm_words, messages:
        Simulated-machine collective words/messages (summed over the
        participating ranks) accrued inside the span (children included).
    """

    name: str
    attrs: Dict[str, Any]
    span_id: int
    parent_id: Optional[int]
    depth: int
    start: float
    duration: float
    flops: int = 0
    words: int = 0
    comm_words: int = 0
    messages: int = 0

    def to_dict(self) -> dict:
        """Plain-dict form (for JSON exporters)."""
        return {
            "name": self.name,
            "attrs": dict(self.attrs),
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "start": self.start,
            "duration": self.duration,
            "flops": self.flops,
            "words": self.words,
            "comm_words": self.comm_words,
            "messages": self.messages,
        }


class _OpenSpan:
    """Mutable in-flight span (closed spans become :class:`SpanRecord`)."""

    __slots__ = (
        "name",
        "attrs",
        "span_id",
        "parent",
        "depth",
        "start",
        "flops",
        "words",
        "comm_words",
        "messages",
    )

    def __init__(
        self,
        name: str,
        attrs: Dict[str, Any],
        span_id: int,
        parent: Optional["_OpenSpan"],
        start: float,
    ) -> None:
        self.name = name
        self.attrs = attrs
        self.span_id = span_id
        self.parent = parent
        self.depth = 0 if parent is None else parent.depth + 1
        self.start = start
        self.flops = 0
        self.words = 0
        self.comm_words = 0
        self.messages = 0


@dataclass
class TraceSession:
    """One tracing run: the spans, the metrics registry, and the clock.

    Sessions are installed/removed by :func:`start_trace` /
    :func:`stop_trace` (or the :func:`tracing` context manager); while
    installed, every instrumentation hook in the package feeds this object.
    ``clock`` is injectable so tests can drive deterministic timings.
    """

    clock: Callable[[], float] = time.perf_counter
    spans: List[SpanRecord] = field(default_factory=list)
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    #: Costs accrued outside any span (hooks firing between spans).
    unattributed: Dict[str, int] = field(
        default_factory=lambda: {"flops": 0, "words": 0, "comm_words": 0, "messages": 0}
    )

    def __post_init__(self) -> None:
        self._epoch = self.clock()
        self._next_id = 0

    # -- span lifecycle (driven by the ``trace`` context manager) -----------
    def _open_span(self, name: str, attrs: Dict[str, Any]) -> _OpenSpan:
        span_id = self._next_id
        self._next_id += 1
        parent = _CURRENT_SPAN.get()
        return _OpenSpan(name, dict(attrs), span_id, parent, self.clock() - self._epoch)

    def _close_span(self, span: _OpenSpan) -> SpanRecord:
        duration = (self.clock() - self._epoch) - span.start
        record = SpanRecord(
            name=span.name,
            attrs=span.attrs,
            span_id=span.span_id,
            parent_id=None if span.parent is None else span.parent.span_id,
            depth=span.depth,
            start=span.start,
            duration=duration,
            flops=span.flops,
            words=span.words,
            comm_words=span.comm_words,
            messages=span.messages,
        )
        self.spans.append(record)
        parent = span.parent
        if parent is not None:
            # Inclusive accounting: the parent carries its children's totals.
            parent.flops += span.flops
            parent.words += span.words
            parent.comm_words += span.comm_words
            parent.messages += span.messages
        self.metrics.observe(f"span.{span.name}.seconds", duration)
        return record

    # -- hook targets (see repro.observe.instrument) -------------------------
    def _add_cost(self, flops: int, words: int) -> None:
        span = _CURRENT_SPAN.get()
        if span is None:
            self.unattributed["flops"] += flops
            self.unattributed["words"] += words
        else:
            span.flops += flops
            span.words += words

    def _add_comm(self, words: int, messages: int) -> None:
        span = _CURRENT_SPAN.get()
        if span is None:
            self.unattributed["comm_words"] += words
            self.unattributed["messages"] += messages
        else:
            span.comm_words += words
            span.messages += messages

    def _annotate(self, attrs: Dict[str, Any]) -> None:
        span = _CURRENT_SPAN.get()
        if span is not None:
            span.attrs.update(attrs)

    # -- queries -------------------------------------------------------------
    def spans_named(self, name: str) -> List[SpanRecord]:
        """Closed spans called ``name``, in closing order."""
        return [span for span in self.spans if span.name == name]

    def children_of(self, span_id: int) -> List[SpanRecord]:
        """Closed direct children of the span with id ``span_id``."""
        return [span for span in self.spans if span.parent_id == span_id]


class trace:
    """Span context manager: ``with trace("sweep", iteration=3): ...``.

    With no active session, ``__enter__`` returns ``None`` and nothing else
    happens — the disabled cost is two module-global loads (enter + exit)
    plus the construction of this tiny object, bounded by a tier-1 test.
    """

    __slots__ = ("_name", "_attrs", "_span", "_token")

    def __init__(self, name: str, **attrs: Any) -> None:
        self._name = name
        self._attrs = attrs
        self._span: Optional[_OpenSpan] = None
        self._token = None

    def __enter__(self) -> Optional[_OpenSpan]:
        session = _STATE.session
        if session is None:
            return None
        span = session._open_span(self._name, self._attrs)
        self._token = _CURRENT_SPAN.set(span)
        self._span = span
        return span

    def __exit__(self, exc_type, exc, tb) -> bool:
        span = self._span
        if span is not None:
            _CURRENT_SPAN.reset(self._token)
            self._span = None
            session = _STATE.session
            if session is not None:
                session._close_span(span)
        return False


def start_trace(*, clock: Callable[[], float] = time.perf_counter) -> TraceSession:
    """Install (and return) a fresh :class:`TraceSession`.

    Exactly one session can be active at a time — nested tracing would
    silently split the accrued ledgers, so it raises instead.
    """
    if _STATE.session is not None:
        raise RuntimeError("a trace session is already active; stop it first")
    session = TraceSession(clock=clock)
    _STATE.session = session
    return session


def stop_trace() -> TraceSession:
    """Uninstall and return the active session (error if none is active)."""
    session = _STATE.session
    if session is None:
        raise RuntimeError("no trace session is active")
    _STATE.session = None
    return session


@contextmanager
def tracing(*, clock: Callable[[], float] = time.perf_counter):
    """Scoped tracing: ``with tracing() as session: ...`` (always uninstalls)."""
    session = start_trace(clock=clock)
    try:
        yield session
    finally:
        _STATE.session = None


def median_time(
    fn: Callable[[], Any],
    *,
    repeats: int = 3,
    clock: Callable[[], float] = time.perf_counter,
) -> Tuple[float, Any]:
    """Median wall-clock seconds of at least three calls to ``fn``.

    The timing utility the experiments use instead of single
    ``perf_counter`` samples: one draw of a noisy timer is dominated by
    scheduler jitter at sub-millisecond scales, while the median of three or
    more repetitions is a robust location estimate.  Returns
    ``(median_seconds, last_result)`` so callers can keep the computed value
    without re-running ``fn``.
    """
    repeats = max(int(repeats), 3)
    durations: List[float] = []
    result: Any = None
    for _ in range(repeats):
        start = clock()
        result = fn()
        durations.append(clock() - start)
    return float(statistics.median(durations)), result
