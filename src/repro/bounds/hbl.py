"""Hölder-Brascamp-Lieb machinery for MTTKRP (Lemma 4.1 and Figure 1).

A point of the MTTKRP iteration space is an ``(N+1)``-tuple
``(i_1, ..., i_N, r)``.  The data touched by a set ``F`` of iteration points
is described by ``N + 1`` projections:

* ``φ_k(F)`` for ``k = 1..N`` extracts ``(i_k, r)`` — the entries of the
  ``k``-th factor matrix (input for ``k != n``, output for ``k = n``);
* ``φ_{N+1}(F)`` extracts ``(i_1, ..., i_N)`` — the entries of the tensor.

Lemma 4.1 bounds ``|F| <= prod_j |φ_j(F)|^{s_j}`` for any feasible exponent
vector ``s`` of the LP of Lemma 4.2.  This module provides the projections,
the bound, an empirical verifier used by the tests (and by the Figure 1
reproduction), and the per-segment iteration bound used in Theorem 4.1.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.bounds.lemmas import (
    max_product_given_sum,
    mttkrp_constraint_matrix,
    mttkrp_lp_solution,
    segment_constant,
)
from repro.exceptions import ParameterError
from repro.utils.validation import check_positive_int


def mttkrp_delta_matrix(n_modes: int) -> np.ndarray:
    """Constraint matrix Δ of the MTTKRP HBL inequality (see Lemma 4.1/4.2)."""
    return mttkrp_constraint_matrix(n_modes)


def mttkrp_projections(
    points: Iterable[Sequence[int]], n_modes: int
) -> List[Set[Tuple[int, ...]]]:
    """Projections ``φ_1(F), ..., φ_{N+1}(F)`` of a set of iteration points.

    Parameters
    ----------
    points:
        Iterable of ``(N+1)``-tuples ``(i_1, ..., i_N, r)``.
    n_modes:
        Number of tensor modes ``N``.

    Returns
    -------
    list of sets
        ``N + 1`` sets of tuples: the first ``N`` are factor-matrix
        coordinate sets ``{(i_k, r)}``, the last is the tensor coordinate set
        ``{(i_1, ..., i_N)}``.  This is exactly the decomposition illustrated
        in Figure 1 of the paper.
    """
    n_modes = check_positive_int(n_modes, "n_modes", minimum=2)
    projections: List[Set[Tuple[int, ...]]] = [set() for _ in range(n_modes + 1)]
    for point in points:
        point = tuple(int(v) for v in point)
        if len(point) != n_modes + 1:
            raise ParameterError(
                f"iteration points must have length N+1={n_modes + 1}, got {len(point)}"
            )
        rank_index = point[-1]
        for k in range(n_modes):
            projections[k].add((point[k], rank_index))
        projections[n_modes].add(point[:-1])
    return projections


def projection_counts(points: Iterable[Sequence[int]], n_modes: int) -> List[int]:
    """Sizes ``|φ_j(F)|`` of the projections of a set of iteration points."""
    return [len(p) for p in mttkrp_projections(points, n_modes)]


def hbl_bound(
    projection_sizes: Sequence[int], *, exponents: Optional[Sequence[float]] = None
) -> float:
    """The HBL upper bound ``prod_j |φ_j(F)|^{s_j}`` on ``|F|`` (Lemma 4.1).

    Parameters
    ----------
    projection_sizes:
        The ``N + 1`` projection sizes ``|φ_j(F)|``.
    exponents:
        Feasible exponent vector ``s``; defaults to the optimal
        ``s* = (1/N, ..., 1/N, 1 - 1/N)`` of Lemma 4.2.
    """
    sizes = np.asarray(projection_sizes, dtype=np.float64)
    if np.any(sizes < 0):
        raise ParameterError("projection sizes must be non-negative")
    n_modes = len(sizes) - 1
    if n_modes < 2:
        raise ParameterError("need at least 3 projection sizes (N >= 2)")
    if exponents is None:
        exponents = mttkrp_lp_solution(n_modes).s
    exponents = np.asarray(exponents, dtype=np.float64)
    if exponents.shape != sizes.shape:
        raise ParameterError("exponents must have the same length as projection_sizes")
    # 0^s = 0 for s > 0; an empty projection forces |F| = 0.
    if np.any((sizes == 0) & (exponents > 0)):
        return 0.0
    with np.errstate(divide="ignore"):
        log_value = float(np.sum(exponents[sizes > 0] * np.log(sizes[sizes > 0])))
    return float(np.exp(log_value))


def verify_hbl_inequality(
    points: Iterable[Sequence[int]], n_modes: int, *, exponents: Optional[Sequence[float]] = None
) -> Tuple[int, float]:
    """Return ``(|F|, bound)`` for a concrete point set; Lemma 4.1 says ``|F| <= bound``.

    Used by the tests and by the Figure 1 reproduction: for the example of
    Figure 1, ``|F| = 6`` and the four projections each have 6 elements, so
    the bound evaluates to ``6^(2 - 1/3) = 6^(5/3)``.
    """
    point_set = {tuple(int(v) for v in p) for p in points}
    sizes = projection_counts(point_set, n_modes)
    return len(point_set), hbl_bound(sizes, exponents=exponents)


def max_iterations_per_segment(n_modes: int, memory_words: int, *, exact_constant: bool = False) -> float:
    """Upper bound on N-ary multiplies evaluable in a segment of ``M`` loads/stores.

    The proof of Theorem 4.1 shows a segment touches at most ``3M`` array
    entries, so by Lemmas 4.1-4.3 the number of iterations is at most
    ``(3M)^{2-1/N} * prod_j (s*_j / sum s*_i)^{s*_j} <= (3M)^{2-1/N} / N``.

    Parameters
    ----------
    n_modes:
        Number of tensor modes ``N``.
    memory_words:
        Fast-memory capacity ``M``.
    exact_constant:
        When ``True``, use the exact constant from Lemma 4.3 instead of the
        simplified ``1/N`` upper bound.
    """
    n_modes = check_positive_int(n_modes, "n_modes", minimum=2)
    memory_words = check_positive_int(memory_words, "memory_words", minimum=1)
    s = mttkrp_lp_solution(n_modes).s
    if exact_constant:
        return max_product_given_sum(s, 3.0 * memory_words)
    return (3.0 * memory_words) ** (2.0 - 1.0 / n_modes) / n_modes


def figure1_example_points() -> List[Tuple[int, int, int, int]]:
    """The six iteration-space points of Figure 1 (N=3, I_k=15, R=4).

    Coordinates are 1-based in the paper; they are returned 1-based here as
    well because only set sizes matter for the projections.
    """
    return [
        (5, 1, 1, 1),
        (3, 3, 15, 1),
        (7, 10, 2, 2),
        (4, 14, 11, 3),
        (11, 2, 2, 4),
        (14, 14, 14, 4),
    ]
