"""Parallel communication lower bounds (Corollary 4.1, Theorems 4.2/4.3, Corollary 4.2).

All bounds are per-processor words (sends + receives) for a single dense
MTTKRP with tensor dimensions ``I_1 x ... x I_N`` and rank ``R`` on ``P``
processors.  The memory-independent bounds take the load-balance parameters
``γ`` (tensor) and ``δ`` (factor matrices) of the paper; with the default
``γ = δ = 1`` they correspond to perfectly balanced initial/final data
distributions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.bounds.sequential import factor_entries, memory_dependent_lower_bound, tensor_size
from repro.exceptions import ParameterError
from repro.utils.validation import check_positive_int, check_rank, check_shape


def parallel_memory_dependent_lower_bound(
    shape: Sequence[int], rank: int, processors: int, memory_words: int
) -> float:
    """Corollary 4.1: memory-dependent parallel bound.

    ``W >= N I R / (3^(2-1/N) P M^(1-1/N)) - M`` — obtained by applying
    Theorem 4.1 to the processor that performs at least ``I R / P`` loop
    iterations.
    """
    shape = check_shape(shape)
    rank = check_rank(rank)
    processors = check_positive_int(processors, "processors")
    memory_words = check_positive_int(memory_words, "memory_words")
    n_modes = len(shape)
    total = tensor_size(shape)
    leading = (
        n_modes
        * total
        * rank
        / (3.0 ** (2.0 - 1.0 / n_modes) * processors * memory_words ** (1.0 - 1.0 / n_modes))
    )
    return leading - memory_words


def memory_independent_lower_bound_flops(
    shape: Sequence[int],
    rank: int,
    processors: int,
    *,
    gamma: float = 1.0,
    delta: float = 1.0,
) -> float:
    """Theorem 4.2 (Eq. (6)): the "flops-based" memory-independent bound.

    ``W >= 2 (N I R / P)^{N/(2N-1)} - γ I / P - δ sum_k I_k R / P``

    Parameters
    ----------
    gamma, delta:
        Load-imbalance factors: no processor initially/finally owns more than
        ``γ I / P`` tensor entries or ``δ sum_k I_k R / P`` factor entries.
    """
    shape = check_shape(shape)
    rank = check_rank(rank)
    processors = check_positive_int(processors, "processors")
    if gamma < 1.0 or delta < 1.0:
        raise ParameterError("gamma and delta must be >= 1")
    n_modes = len(shape)
    total = tensor_size(shape)
    exponent = n_modes / (2.0 * n_modes - 1.0)
    leading = 2.0 * (n_modes * total * rank / processors) ** exponent
    return leading - gamma * total / processors - delta * factor_entries(shape, rank) / processors


def memory_independent_lower_bound_tensor(
    shape: Sequence[int],
    rank: int,
    processors: int,
    *,
    gamma: float = 1.0,
    delta: float = 1.0,
    proof_constant: bool = False,
) -> float:
    """Theorem 4.3 (Eq. (7)): the "tensor-access" memory-independent bound.

    ``W >= min( sqrt(2/(3γ)) N R (I/P)^{1/N} - δ sum_k I_k R / P ,  γ I / (2P) )``

    Parameters
    ----------
    proof_constant:
        The theorem statement uses the constant ``sqrt(2/(3γ))``; its proof
        derives the slightly different constant ``(2/(3γ))^{(N-1)/N}``.  Set
        this flag to evaluate the proof's constant instead (the difference is
        immaterial for the comparisons in Section VI).
    """
    shape = check_shape(shape)
    rank = check_rank(rank)
    processors = check_positive_int(processors, "processors")
    if gamma < 1.0 or delta < 1.0:
        raise ParameterError("gamma and delta must be >= 1")
    n_modes = len(shape)
    total = tensor_size(shape)
    if proof_constant:
        constant = (2.0 / (3.0 * gamma)) ** ((n_modes - 1.0) / n_modes)
    else:
        constant = (2.0 / (3.0 * gamma)) ** 0.5
    factor_branch = (
        constant * n_modes * rank * (total / processors) ** (1.0 / n_modes)
        - delta * factor_entries(shape, rank) / processors
    )
    tensor_branch = gamma * total / (2.0 * processors)
    return min(factor_branch, tensor_branch)


def cubical_lower_bound(total_size: int, n_modes: int, rank: int, processors: int) -> float:
    """Corollary 4.2: combined asymptotic bound for cubical tensors.

    ``W = Ω( (N I R / P)^{N/(2N-1)} + N R (I/P)^{1/N} )`` — returned with unit
    constants, which is the reference curve used in the strong-scaling
    comparisons (the two terms dominate in the large-P and small-P regimes
    respectively).
    """
    total_size = check_positive_int(total_size, "total_size")
    n_modes = check_positive_int(n_modes, "n_modes", minimum=2)
    rank = check_rank(rank)
    processors = check_positive_int(processors, "processors")
    exponent = n_modes / (2.0 * n_modes - 1.0)
    flops_term = (n_modes * total_size * rank / processors) ** exponent
    tensor_term = n_modes * rank * (total_size / processors) ** (1.0 / n_modes)
    return flops_term + tensor_term


@dataclass(frozen=True)
class ParallelBounds:
    """All parallel lower bounds evaluated for one problem configuration."""

    memory_independent_flops: float
    memory_independent_tensor: float
    memory_dependent: Optional[float] = None

    @property
    def combined(self) -> float:
        """The effective lower bound: the largest of the applicable bounds, clamped at 0."""
        candidates = [self.memory_independent_flops, self.memory_independent_tensor, 0.0]
        if self.memory_dependent is not None:
            candidates.append(self.memory_dependent)
        return max(candidates)


def combined_parallel_lower_bound(
    shape: Sequence[int],
    rank: int,
    processors: int,
    *,
    memory_words: Optional[int] = None,
    gamma: float = 1.0,
    delta: float = 1.0,
) -> ParallelBounds:
    """Evaluate every applicable parallel lower bound for one configuration.

    The memory-dependent bound (Corollary 4.1) is only included when a local
    memory size ``memory_words`` is supplied.
    """
    flops_bound = memory_independent_lower_bound_flops(
        shape, rank, processors, gamma=gamma, delta=delta
    )
    tensor_bound = memory_independent_lower_bound_tensor(
        shape, rank, processors, gamma=gamma, delta=delta
    )
    memory_bound = None
    if memory_words is not None:
        memory_bound = parallel_memory_dependent_lower_bound(shape, rank, processors, memory_words)
    return ParallelBounds(
        memory_independent_flops=flops_bound,
        memory_independent_tensor=tensor_bound,
        memory_dependent=memory_bound,
    )
