"""Communication lower bounds for dense MTTKRP (Section IV of the paper).

The subpackage is organised by the structure of Section IV:

* :mod:`repro.bounds.lemmas` — the supporting optimisation results:
  Lemma 4.2 (a small linear program), Lemma 4.3 (maximum of a monomial under
  a sum constraint) and Lemma 4.4 (minimum of a sum under a monomial
  constraint), each implemented both in closed form and as a numeric
  cross-check using :mod:`scipy.optimize`.
* :mod:`repro.bounds.hbl` — the Hölder-Brascamp-Lieb machinery of Lemma 4.1:
  the MTTKRP constraint matrix Δ, the array projections φ_j of a subset of
  the iteration space, and an empirical verifier of the inequality.
* :mod:`repro.bounds.sequential` — Theorem 4.1 (memory-dependent bound) and
  Fact 4.1 (input/output bound).
* :mod:`repro.bounds.parallel` — Corollary 4.1 (memory-dependent parallel
  bound), Theorems 4.2 and 4.3 (memory-independent bounds) and Corollary 4.2
  (combined bound for cubical tensors).
"""

from repro.bounds.lemmas import (
    mttkrp_lp_solution,
    solve_mttkrp_lp_numeric,
    max_product_given_sum,
    max_product_given_sum_numeric,
    min_sum_given_product,
    min_sum_given_product_numeric,
)
from repro.bounds.hbl import (
    mttkrp_delta_matrix,
    mttkrp_projections,
    projection_counts,
    hbl_bound,
    verify_hbl_inequality,
    max_iterations_per_segment,
)
from repro.bounds.sequential import (
    memory_dependent_lower_bound,
    io_lower_bound,
    sequential_lower_bound,
)
from repro.bounds.parallel import (
    parallel_memory_dependent_lower_bound,
    memory_independent_lower_bound_flops,
    memory_independent_lower_bound_tensor,
    cubical_lower_bound,
    combined_parallel_lower_bound,
)

__all__ = [
    "mttkrp_lp_solution",
    "solve_mttkrp_lp_numeric",
    "max_product_given_sum",
    "max_product_given_sum_numeric",
    "min_sum_given_product",
    "min_sum_given_product_numeric",
    "mttkrp_delta_matrix",
    "mttkrp_projections",
    "projection_counts",
    "hbl_bound",
    "verify_hbl_inequality",
    "max_iterations_per_segment",
    "memory_dependent_lower_bound",
    "io_lower_bound",
    "sequential_lower_bound",
    "parallel_memory_dependent_lower_bound",
    "memory_independent_lower_bound_flops",
    "memory_independent_lower_bound_tensor",
    "cubical_lower_bound",
    "combined_parallel_lower_bound",
]
