"""Supporting optimisation lemmas (Lemmas 4.2, 4.3, 4.4 of the paper).

Each lemma is implemented twice:

* a *closed-form* function that returns exactly the expression derived in the
  paper's proof, and
* a *numeric* function that solves the same optimisation problem with
  :mod:`scipy.optimize` (``linprog`` for the LP, ``minimize`` for the
  nonlinear problems).

The test-suite cross-checks the two on randomised instances; the bound
formulas in :mod:`repro.bounds.sequential` / :mod:`repro.bounds.parallel` use
only the closed forms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np
from scipy import optimize

from repro.exceptions import ParameterError
from repro.utils.validation import check_positive_int


# ---------------------------------------------------------------------------
# Lemma 4.2: the MTTKRP linear program
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class LPSolution:
    """Solution of the linear program of Lemma 4.2.

    Attributes
    ----------
    s:
        Optimal exponent vector ``s*`` of length ``N + 1`` (one entry per
        factor matrix plus one for the tensor).
    objective:
        Optimal objective value ``1^T s* = 2 - 1/N``.
    """

    s: np.ndarray
    objective: float


def mttkrp_constraint_matrix(n_modes: int) -> np.ndarray:
    """The ``(N+1) x (N+1)`` constraint matrix Δ of Lemma 4.2 / Lemma 4.1.

    Rows correspond to the ``N + 1`` loop indices ``(i_1, ..., i_N, r)`` and
    columns to the ``N + 1`` arrays: the ``N`` factor matrices (column ``k``
    involves indices ``i_{k+1}`` and ``r``) followed by the tensor (last
    column, involving ``i_1, ..., i_N`` but not ``r``)::

        Δ = [[ I_NxN   1_Nx1 ],
             [ 1_1xN   0     ]]
    """
    n_modes = check_positive_int(n_modes, "n_modes", minimum=2)
    delta = np.zeros((n_modes + 1, n_modes + 1), dtype=np.float64)
    delta[:n_modes, :n_modes] = np.eye(n_modes)
    delta[:n_modes, n_modes] = 1.0
    delta[n_modes, :n_modes] = 1.0
    return delta


def mttkrp_lp_solution(n_modes: int) -> LPSolution:
    """Closed-form solution of the LP of Lemma 4.2.

    ``min 1^T s  s.t.  Δ s >= 1, s >= 0`` has optimum
    ``s* = (1/N, ..., 1/N, 1 - 1/N)`` with objective ``2 - 1/N``.
    """
    n_modes = check_positive_int(n_modes, "n_modes", minimum=2)
    s = np.full(n_modes + 1, 1.0 / n_modes)
    s[-1] = 1.0 - 1.0 / n_modes
    return LPSolution(s=s, objective=2.0 - 1.0 / n_modes)


def solve_mttkrp_lp_numeric(n_modes: int) -> LPSolution:
    """Solve the LP of Lemma 4.2 numerically with :func:`scipy.optimize.linprog`."""
    n_modes = check_positive_int(n_modes, "n_modes", minimum=2)
    delta = mttkrp_constraint_matrix(n_modes)
    m = n_modes + 1
    # linprog solves min c^T x s.t. A_ub x <= b_ub; our constraint Δ s >= 1
    # becomes -Δ s <= -1.
    result = optimize.linprog(
        c=np.ones(m),
        A_ub=-delta,
        b_ub=-np.ones(m),
        bounds=[(0.0, 1.0)] * m,
        method="highs",
    )
    if not result.success:  # pragma: no cover - linprog on this tiny LP never fails
        raise RuntimeError(f"linprog failed: {result.message}")
    return LPSolution(s=np.asarray(result.x), objective=float(result.fun))


# ---------------------------------------------------------------------------
# Lemma 4.3: maximise a monomial subject to a sum constraint
# ---------------------------------------------------------------------------

def max_product_given_sum(s: Sequence[float], budget: float) -> float:
    """Closed-form maximum of ``prod_i x_i^{s_i}`` subject to ``sum_i x_i <= budget``.

    Lemma 4.3: the optimum is
    ``budget^{sum_i s_i} * prod_j (s_j / sum_i s_i)^{s_j}``, attained at
    ``x_j = budget * s_j / sum_i s_i``.
    """
    s = np.asarray(s, dtype=np.float64)
    if np.any(s < 0):
        raise ParameterError("exponents s must be non-negative")
    if budget <= 0:
        raise ParameterError("budget (constant c) must be positive")
    total = float(s.sum())
    if total == 0:
        return 1.0
    # 0^0 := 1 for zero exponents (the corresponding x_j drops out).
    positive = s[s > 0]
    log_value = total * np.log(budget) + float(np.sum(positive * (np.log(positive) - np.log(total))))
    return float(np.exp(log_value))


def max_product_given_sum_argmax(s: Sequence[float], budget: float) -> np.ndarray:
    """The maximiser ``x_j = budget * s_j / sum_i s_i`` of Lemma 4.3."""
    s = np.asarray(s, dtype=np.float64)
    total = float(s.sum())
    if total == 0:
        return np.zeros_like(s)
    return budget * s / total


def max_product_given_sum_numeric(s: Sequence[float], budget: float) -> float:
    """Numerically maximise ``prod x_i^{s_i}`` s.t. ``sum x_i <= budget`` (cross-check).

    Works in log-space for numerical robustness and uses SLSQP with the
    closed-form optimum as a (slightly perturbed) starting point.
    """
    s = np.asarray(s, dtype=np.float64)
    if np.any(s < 0):
        raise ParameterError("exponents s must be non-negative")
    if budget <= 0:
        raise ParameterError("budget (constant c) must be positive")
    m = len(s)

    def neg_log_objective(x: np.ndarray) -> float:
        return -float(np.sum(s * np.log(np.maximum(x, 1e-300))))

    start = np.full(m, budget / m)
    constraints = [{"type": "ineq", "fun": lambda x: budget - np.sum(x)}]
    bounds = [(1e-12 * budget, budget)] * m
    result = optimize.minimize(
        neg_log_objective, start, bounds=bounds, constraints=constraints, method="SLSQP"
    )
    return float(np.exp(-result.fun))


# ---------------------------------------------------------------------------
# Lemma 4.4: minimise a sum subject to a monomial constraint
# ---------------------------------------------------------------------------

def min_sum_given_product(s: Sequence[float], floor: float) -> float:
    """Closed-form minimum of ``sum_i x_i`` subject to ``prod_i x_i^{s_i} >= floor``.

    Lemma 4.4: the optimum is
    ``(floor / prod_i s_i^{s_i})^{1 / sum_i s_i} * sum_i s_i``, attained at
    ``x_j = s_j * (floor / prod_i s_i^{s_i})^{1 / sum_i s_i}``.
    """
    s = np.asarray(s, dtype=np.float64)
    if np.any(s < 0):
        raise ParameterError("exponents s must be non-negative")
    if floor <= 0:
        raise ParameterError("floor (constant c) must be positive")
    total = float(s.sum())
    if total == 0:
        raise ParameterError("at least one exponent must be positive")
    positive = s[s > 0]
    log_scale = (np.log(floor) - float(np.sum(positive * np.log(positive)))) / total
    return float(np.exp(log_scale) * total)


def min_sum_given_product_argmin(s: Sequence[float], floor: float) -> np.ndarray:
    """The minimiser ``x_j = s_j * (floor / prod s_i^{s_i})^{1/sum s_i}`` of Lemma 4.4."""
    s = np.asarray(s, dtype=np.float64)
    total = float(s.sum())
    positive = s[s > 0]
    log_scale = (np.log(floor) - float(np.sum(positive * np.log(positive)))) / total
    return s * float(np.exp(log_scale))


def min_sum_given_product_numeric(s: Sequence[float], floor: float) -> float:
    """Numerically minimise ``sum x_i`` s.t. ``prod x_i^{s_i} >= floor`` (cross-check)."""
    s = np.asarray(s, dtype=np.float64)
    if np.any(s < 0):
        raise ParameterError("exponents s must be non-negative")
    if floor <= 0:
        raise ParameterError("floor (constant c) must be positive")
    m = len(s)
    log_floor = float(np.log(floor))

    def objective(x: np.ndarray) -> float:
        return float(np.sum(x))

    def constraint(x: np.ndarray) -> float:
        return float(np.sum(s * np.log(np.maximum(x, 1e-300)))) - log_floor

    start = min_sum_given_product_argmin(s, floor) * 1.3 + 1e-6
    constraints = [{"type": "ineq", "fun": constraint}]
    bounds = [(1e-12, None)] * m
    result = optimize.minimize(
        objective, start, bounds=bounds, constraints=constraints, method="SLSQP"
    )
    return float(result.fun)


# ---------------------------------------------------------------------------
# The segment-bound constant of Theorem 4.1
# ---------------------------------------------------------------------------

def segment_constant(n_modes: int) -> float:
    """The constant ``prod_j (s*_j / sum s*_i)^{s*_j}`` evaluated at ``s*``.

    The proof of Theorem 4.1 shows this constant is at most ``1/N``; the exact
    value is returned here so the bound machinery can expose both the exact
    and the simplified (``1/N``) variants.
    """
    n_modes = check_positive_int(n_modes, "n_modes", minimum=2)
    s = mttkrp_lp_solution(n_modes).s
    total = float(s.sum())
    value = float(np.prod((s / total) ** s))
    return value
