"""Sequential communication lower bounds (Theorem 4.1 and Fact 4.1).

All bounds are expressed in *words* moved between fast and slow memory
(loads + stores) for a single dense MTTKRP with tensor dimensions
``I_1 x ... x I_N`` and rank ``R``, on a machine with fast memory of size
``M`` words.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.utils.validation import check_positive_int, check_rank, check_shape


def tensor_size(shape: Sequence[int]) -> int:
    """Total number of tensor entries ``I = prod_k I_k``."""
    shape = check_shape(shape)
    total = 1
    for dim in shape:
        total *= dim
    return total


def factor_entries(shape: Sequence[int], rank: int) -> int:
    """Total number of factor-matrix entries ``sum_k I_k * R`` (all N matrices)."""
    shape = check_shape(shape)
    rank = check_rank(rank)
    return sum(shape) * rank


def memory_dependent_lower_bound(
    shape: Sequence[int], rank: int, memory_words: int, *, exact_segments: bool = False
) -> float:
    """Theorem 4.1: sequential memory-dependent lower bound (Eq. (4)).

    ``W >= N * I * R / (3^(2-1/N) * M^(1-1/N)) - M``

    Parameters
    ----------
    shape, rank:
        Problem dimensions.
    memory_words:
        Fast-memory capacity ``M``.
    exact_segments:
        When ``True``, return the un-simplified segment-counting expression
        ``M * floor(N I R / (3M)^(2-1/N))`` from the end of the proof instead
        of the smooth Eq. (4) form.  The two differ by less than ``M``.

    Returns
    -------
    float
        Lower bound on loads + stores (may be negative for tiny problems, in
        which case the bound is vacuous — callers typically clamp at zero).
    """
    shape = check_shape(shape)
    rank = check_rank(rank)
    memory_words = check_positive_int(memory_words, "memory_words")
    n_modes = len(shape)
    total = tensor_size(shape)
    if exact_segments:
        segments = math.floor(n_modes * total * rank / (3.0 * memory_words) ** (2.0 - 1.0 / n_modes))
        return float(memory_words * segments)
    leading = n_modes * total * rank / (3.0 ** (2.0 - 1.0 / n_modes) * memory_words ** (1.0 - 1.0 / n_modes))
    return leading - memory_words


def io_lower_bound(shape: Sequence[int], rank: int, memory_words: int) -> float:
    """Fact 4.1: the trivial input/output bound (Eq. (5)).

    ``W >= I + sum_k I_k R - 2M``: every input and output word must cross the
    fast/slow boundary except what can start and end resident in fast memory.
    """
    shape = check_shape(shape)
    rank = check_rank(rank)
    memory_words = check_positive_int(memory_words, "memory_words")
    return float(tensor_size(shape) + factor_entries(shape, rank) - 2 * memory_words)


@dataclass(frozen=True)
class SequentialBounds:
    """Both sequential lower bounds and their maximum, for reporting."""

    memory_dependent: float
    io_bound: float

    @property
    def combined(self) -> float:
        """The effective lower bound ``max(W_lb1, W_lb2, 0)``."""
        return max(self.memory_dependent, self.io_bound, 0.0)


def sequential_lower_bound(shape: Sequence[int], rank: int, memory_words: int) -> SequentialBounds:
    """Evaluate both sequential bounds (Eqs. (23) and (24)) for a problem."""
    return SequentialBounds(
        memory_dependent=memory_dependent_lower_bound(shape, rank, memory_words),
        io_bound=io_lower_bound(shape, rank, memory_words),
    )
