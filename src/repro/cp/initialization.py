"""Factor-matrix initialisation strategies for CP-ALS."""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from repro.exceptions import ParameterError
from repro.tensor.dense import as_ndarray
from repro.tensor.matricization import unfold
from repro.tensor.random import random_factors
from repro.utils.validation import check_rank


def initialize_factors(
    tensor,
    rank: int,
    *,
    method: str = "random",
    seed: Union[None, int, np.random.Generator] = None,
) -> List[np.ndarray]:
    """Initial factor matrices for CP-ALS.

    Parameters
    ----------
    tensor:
        The dense tensor being decomposed.
    rank:
        Target CP rank ``R``.
    method:
        ``"random"`` — i.i.d. standard-normal entries (the common default);
        ``"svd"`` — the leading ``R`` left singular vectors of each mode-``k``
        unfolding (HOSVD-style initialisation, deterministic given the
        tensor).  When ``R`` exceeds a mode's dimension, the extra columns are
        filled with random entries.
    seed:
        Seed for the random components.
    """
    data = as_ndarray(tensor)
    rank = check_rank(rank)
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    if method == "random":
        return random_factors(data.shape, rank, seed=rng)
    if method == "svd":
        factors = []
        for k in range(data.ndim):
            unfolding = unfold(data, k)
            u, _, _ = np.linalg.svd(unfolding, full_matrices=False)
            columns = min(rank, u.shape[1])
            factor = np.empty((data.shape[k], rank), dtype=np.float64)
            factor[:, :columns] = u[:, :columns]
            if columns < rank:
                factor[:, columns:] = rng.standard_normal((data.shape[k], rank - columns))
            factors.append(factor)
        return factors
    raise ParameterError(f"unknown initialisation method {method!r}")
