"""CP decomposition drivers built on the MTTKRP kernels (Section II-A context).

MTTKRP is the bottleneck of CP optimisation algorithms; this subpackage
provides the workload that motivates the paper:

* :func:`cp_als` — the alternating-least-squares algorithm for dense tensors,
  with a pluggable MTTKRP kernel;
* :func:`parallel_cp_als` — CP-ALS whose MTTKRPs run on the simulated
  distributed machine (Algorithm 3), so per-iteration communication can be
  measured and compared against the bounds.
"""

from repro.cp.initialization import initialize_factors
from repro.cp.als import cp_als, CPALSResult, KERNEL_NAMES
from repro.cp.parallel_als import (
    parallel_cp_als,
    ParallelCPALSResult,
    PARALLEL_KERNEL_NAMES,
)

__all__ = [
    "initialize_factors",
    "cp_als",
    "CPALSResult",
    "KERNEL_NAMES",
    "parallel_cp_als",
    "ParallelCPALSResult",
    "PARALLEL_KERNEL_NAMES",
]
