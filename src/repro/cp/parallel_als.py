"""CP-ALS whose MTTKRPs run on the simulated distributed machine.

This driver measures the communication that the MTTKRP kernels contribute to
a full CP-ALS workload: every mode update performs its MTTKRP with
Algorithm 3 (or Algorithm 4) on a :class:`~repro.parallel.SimulatedMachine`
and the per-iteration word counts are recorded.  The small dense linear
algebra of the normal equations (R x R solves and Gram updates) is treated as
replicated — its communication is lower order, exactly as in the paper's
discussion of the CP-ALS context (Section VII).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.backend import Backend, get_backend
from repro.core.sweep_kernel import PerCallKernel, SweepKernel, check_kernel_name
from repro.cp.als import cp_als, CPALSResult
from repro.exceptions import DistributionError, ParameterError
from repro.observe.tracer import trace
from repro.parallel.dimtree import DistributedDimtreeKernel
from repro.parallel.general import general_mttkrp
from repro.parallel.grid_selection import choose_general_grid, choose_stationary_grid
from repro.parallel.machine import SimulatedMachine
from repro.parallel.stationary import stationary_mttkrp
from repro.resilience.checkpoint import CheckpointState, CheckpointStore
from repro.tensor.dense import as_ndarray
from repro.utils.validation import check_positive_int, check_rank

#: MTTKRP kernels resolvable by :func:`parallel_cp_als`, mirroring the
#: sequential registry (:data:`repro.cp.als.KERNEL_NAMES`): ``"exact"`` runs
#: Algorithm 3/4, ``"dimtree"`` the sweep-aware distributed dimension-tree
#: kernel of :mod:`repro.parallel.dimtree` (gathers each factor once per
#: update instead of once per mode, local trees reuse partial contractions),
#: ``"sampled"`` the distributed sampled kernel of
#: :mod:`repro.sketch.parallel` with a caller-chosen distribution,
#: ``"sampled-tree"`` the same kernel pinned to the segment-tree exact
#: leverage sampler (``distribution="tree-leverage"``, Gram-All-Reduce-only
#: setup), and ``"sampled-dimtree"`` the fused kernel of
#: :mod:`repro.sketch.parallel.sampled_dimtree` (cached per-update factor
#: All-Gathers plus a per-update Gram All-Reduce only; draws bitwise equal
#: to the sequential fused kernel).  The sketch subsystem is imported lazily
#: — it layers on this driver, so a module-level import would be circular.
#: Name validation is shared with the sequential registry via
#: :func:`repro.core.sweep_kernel.check_kernel_name`.
PARALLEL_KERNEL_NAMES = ("exact", "dimtree", "sampled", "sampled-tree", "sampled-dimtree")


class _SweepWordCounter(SweepKernel):
    """Forward the sweep protocol to the inner kernel; record per-sweep words."""

    def __init__(
        self,
        inner: SweepKernel,
        machine: SimulatedMachine,
        ndim: int,
        words_per_iteration: List[int],
    ) -> None:
        self.inner = inner
        self.machine = machine
        self.ndim = ndim
        self.words_per_iteration = words_per_iteration
        self._calls = 0
        self._words_before = 0

    def begin_sweep(self, iteration: int) -> None:
        self.inner.begin_sweep(iteration)

    def factor_updated(self, mode: int, factor: np.ndarray) -> None:
        self.inner.factor_updated(mode, factor)

    def mttkrp(self, tensor, factors, mode) -> np.ndarray:
        result = self.inner.mttkrp(tensor, factors, mode)
        self._calls += 1
        if self._calls % self.ndim == 0:
            current = self.machine.max_words_communicated
            self.words_per_iteration.append(current - self._words_before)
            self._words_before = current
        return result

    # -- checkpoint/restore: forward, adding this counter's own call state.
    def capture_state(self) -> Optional[dict]:
        return {
            "kind": "sweep-word-counter",
            "calls": self._calls,
            "inner": self.inner.capture_state(),
        }

    def restore_state(self, state: Optional[dict]) -> None:
        if state is None:
            return
        self._calls = int(state["calls"])
        # Per-sweep deltas of the resumed run are measured from the resumed
        # machine's current ledger, whatever it already accumulated.
        self._words_before = self.machine.max_words_communicated
        self.inner.restore_state(state["inner"])

    def invalidate_caches(self) -> bool:
        return self.inner.invalidate_caches()


@dataclass
class ParallelCPALSResult:
    """Outcome of a simulated-parallel CP-ALS run.

    Attributes
    ----------
    als:
        The underlying sequential-quality :class:`CPALSResult` (fits, model).
    machine:
        The simulated machine accumulating communication over all MTTKRPs.
    words_per_iteration:
        Max-per-rank words communicated in each ALS sweep.
    grids:
        The processor grid used for each mode's MTTKRP.
    algorithm:
        ``"stationary"`` or ``"general"``.
    """

    als: CPALSResult
    machine: SimulatedMachine
    words_per_iteration: List[int] = field(default_factory=list)
    grids: List[Sequence[int]] = field(default_factory=list)
    algorithm: str = "stationary"

    @property
    def total_words(self) -> int:
        """Max-per-rank words communicated over the whole run."""
        return self.machine.max_words_communicated


def parallel_cp_als(
    tensor,
    rank: int,
    n_procs: int,
    *,
    algorithm: str = "stationary",
    kernel: str = "exact",
    n_samples: Optional[int] = None,
    sample_distribution: str = "product-leverage",
    n_iter_max: int = 20,
    tol: float = 1e-7,
    seed: Union[None, int, np.random.Generator] = 0,
    init: Union[str, Sequence[np.ndarray]] = "random",
    invalidation: str = "exact",
    invalidation_tol: float = 1e-2,
    backend: Union[None, str, Backend] = None,
    threads: Optional[int] = None,
    machine: Optional[SimulatedMachine] = None,
    fault_schedule=None,
    on_fault: str = "raise",
    checkpoint_store: Optional[CheckpointStore] = None,
    resume_from: Optional[CheckpointState] = None,
) -> ParallelCPALSResult:
    """Run CP-ALS with every MTTKRP executed on the simulated parallel machine.

    Parameters
    ----------
    tensor:
        Dense ``N``-way tensor.
    rank:
        Target CP rank ``R``.
    n_procs:
        Number of simulated processors ``P``.
    algorithm:
        ``"stationary"`` (Algorithm 3) or ``"general"`` (Algorithm 4).
    kernel:
        ``"exact"`` (the selected algorithm), ``"dimtree"`` (the sweep-aware
        distributed dimension-tree kernel — each factor is All-Gathered once
        per update instead of once per mode and the local MTTKRPs reuse
        cached partial contractions; requires ``algorithm="stationary"``),
        ``"sampled"``, or ``"sampled-tree"`` — the distributed sampled MTTKRP
        of :mod:`repro.sketch.parallel`, resampled on every invocation
        (requires ``algorithm="stationary"``; ``"sampled-tree"`` pins
        ``sample_distribution="tree-leverage"``), or ``"sampled-dimtree"``
        — the fused kernel of :mod:`repro.sketch.parallel.sampled_dimtree`
        sampling each rank's cached dimension-tree partials (also
        stationary-only; see
        :func:`repro.sketch.parallel.parallel_randomized_cp_als` for the full
        randomized driver with an exact-solve fallback).
    n_samples, sample_distribution:
        Draw count and sampling distribution for the sampled kernels
        (defaults mirror the sequential registry entry;
        ``sample_distribution`` is pinned to ``"tree-leverage"`` by the
        tree-backed kernels ``"sampled-tree"`` and ``"sampled-dimtree"``).
    n_iter_max, tol, seed, init:
        Passed to the ALS driver.
    invalidation, invalidation_tol:
        Cache-invalidation policy of the dimension-tree kernels
        (``"dimtree"`` / ``"sampled-dimtree"``), mirroring
        :func:`repro.cp.als.cp_als`: ``"residual"`` gates re-gathers, Gram
        All-Reduces, and cached partials on the factor's accumulated
        relative drift instead of invalidating on every replacement.
    backend:
        Execution backend for the per-rank local MTTKRPs of the ``"exact"``
        kernel (:func:`repro.backend.get_backend`).  The sampled and
        dimension-tree kernels manage their own execution; selecting a
        non-default backend with them raises
        :class:`~repro.exceptions.ParameterError`.
    threads:
        Thread count for the ``"exact"`` kernel's per-rank local MTTKRPs
        (``None`` consults ``REPRO_THREADS``, default 1); simulated ranks
        run as independent tasks, so fits, factors, and counted
        communication are bitwise identical for every value.  The other
        kernels ignore it.
    machine:
        A pre-existing :class:`SimulatedMachine` (or
        :class:`~repro.resilience.machine.FaultyMachine`) to accumulate the
        run's communication; a fresh one is created otherwise.  Must have
        exactly ``n_procs`` ranks.
    fault_schedule:
        A :class:`~repro.resilience.faults.FaultSchedule`: the run executes
        on a :class:`~repro.resilience.machine.FaultyMachine` injecting the
        scheduled faults into every collective (mutually exclusive with an
        explicit ``machine``).  Dropped/corrupted attempts are re-driven
        with exponential backoff and charged to the machine's retry ledgers
        — delivered payloads are never corrupted, so fits and factors stay
        bitwise those of the fault-free run.
    on_fault, checkpoint_store, resume_from:
        Forwarded to :func:`repro.cp.als.cp_als` — the poisoned-MTTKRP
        policy and the checkpoint/resume protocol work identically under
        the distributed kernels.

    Returns
    -------
    ParallelCPALSResult
    """
    data = as_ndarray(tensor)
    rank = check_rank(rank)
    n_procs = check_positive_int(n_procs, "n_procs")
    if algorithm not in ("stationary", "general"):
        raise ParameterError("algorithm must be 'stationary' or 'general'")
    check_kernel_name(kernel, PARALLEL_KERNEL_NAMES, registry="parallel", allow_callable=False)
    exec_backend = get_backend(backend)
    if exec_backend.name != "numpy" and kernel != "exact":
        raise ParameterError(
            f"parallel kernel {kernel!r} does not support non-default execution "
            "backends; use kernel='exact'"
        )
    sampled = kernel in ("sampled", "sampled-tree")
    fused = kernel == "sampled-dimtree"
    if kernel != "exact" and algorithm != "stationary":
        raise ParameterError(
            f"kernel={kernel!r} runs on the stationary distribution; use algorithm='stationary'"
        )
    if kernel in ("sampled-tree", "sampled-dimtree"):
        # Both tree-backed kernels pin the draw distribution: exact leverage
        # via cached segment trees, matching the sequential registry entry
        # (construct DistributedSampledDimtreeKernel directly for the other
        # fused distributions).
        sample_distribution = "tree-leverage"

    if machine is not None and fault_schedule is not None:
        raise ParameterError(
            "pass either a pre-built machine or a fault_schedule, not both "
            "(build a FaultyMachine yourself to combine them)"
        )
    if machine is None:
        if fault_schedule is not None:
            # Lazy import: repro.resilience layers on the parallel machine.
            from repro.resilience.machine import FaultyMachine

            machine = FaultyMachine(n_procs, fault_schedule)
        else:
            machine = SimulatedMachine(n_procs)
    elif machine.n_procs != n_procs:
        raise DistributionError(
            f"machine has {machine.n_procs} processors but n_procs={n_procs}"
        )
    grids: List[Sequence[int]] = []
    if algorithm == "stationary":
        grid = choose_stationary_grid(data.shape, rank, n_procs)
    else:
        grid = choose_general_grid(data.shape, rank, n_procs)
    grids.append(grid)

    sampled_mttkrp_parallel = None
    sample_rng: Union[None, np.random.SeedSequence, np.random.Generator] = None
    if sampled or fused:
        if sampled:
            from repro.sketch.parallel.sampled_mttkrp import parallel_sampled_mttkrp

            sampled_mttkrp_parallel = parallel_sampled_mttkrp
        if isinstance(seed, np.random.Generator):
            sample_rng = seed
        elif seed is None:
            sample_rng = np.random.default_rng()
        else:
            # Mirror the sequential registry: spawn an independent stream so
            # the kernel's draws are not the bit stream the initialisation
            # consumes.
            sample_rng = np.random.default_rng(np.random.SeedSequence(seed).spawn(1)[0])

    words_per_iteration: List[int] = []

    inner: SweepKernel
    if kernel == "dimtree":
        inner = DistributedDimtreeKernel(
            grid,
            machine=machine,
            invalidation=invalidation,
            residual_tol=invalidation_tol,
        )
    elif fused:
        # Lazy import, like the sampled kernels: the fused distributed kernel
        # lives in the sketch subsystem, which layers on this driver.
        from repro.sketch.parallel.sampled_dimtree import (
            DistributedSampledDimtreeKernel,
        )

        inner = DistributedSampledDimtreeKernel(
            grid,
            machine=machine,
            n_samples=n_samples,
            distribution=sample_distribution,
            seed=sample_rng,
            invalidation=invalidation,
            residual_tol=invalidation_tol,
        )
    elif sampled:

        def sampled_kernel(local_tensor, factors, mode):
            return sampled_mttkrp_parallel(
                local_tensor,
                factors,
                mode,
                grid,
                n_samples=n_samples,
                distribution=sample_distribution,
                seed=sample_rng,
                machine=machine,
            ).assemble()

        # The shared draw generator is the closure's only cross-call state;
        # hand it to the adapter so checkpoints capture the stream position.
        inner = PerCallKernel(sampled_kernel, rng=sample_rng)
    else:

        def exact_kernel(local_tensor, factors, mode):
            if algorithm == "stationary":
                result = stationary_mttkrp(
                    local_tensor, factors, mode, grid,
                    machine=machine, backend=exec_backend, threads=threads,
                )
            else:
                result = general_mttkrp(
                    local_tensor, factors, mode, grid,
                    machine=machine, backend=exec_backend, threads=threads,
                )
            return result.assemble()

        inner = PerCallKernel(exact_kernel)

    with trace(
        "parallel-als",
        kernel=kernel,
        algorithm=algorithm,
        n_procs=n_procs,
        grid=[int(g) for g in grid],
    ):
        als_result = cp_als(
            data,
            rank,
            n_iter_max=n_iter_max,
            tol=tol,
            seed=seed,
            init=init,
            kernel=_SweepWordCounter(inner, machine, data.ndim, words_per_iteration),
            on_fault=on_fault,
            checkpoint_store=checkpoint_store,
            resume_from=resume_from,
        )
    return ParallelCPALSResult(
        als=als_result,
        machine=machine,
        words_per_iteration=words_per_iteration,
        grids=grids,
        algorithm=algorithm,
    )
