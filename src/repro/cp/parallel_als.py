"""CP-ALS whose MTTKRPs run on the simulated distributed machine.

This driver measures the communication that the MTTKRP kernels contribute to
a full CP-ALS workload: every mode update performs its MTTKRP with
Algorithm 3 (or Algorithm 4) on a :class:`~repro.parallel.SimulatedMachine`
and the per-iteration word counts are recorded.  The small dense linear
algebra of the normal equations (R x R solves and Gram updates) is treated as
replicated — its communication is lower order, exactly as in the paper's
discussion of the CP-ALS context (Section VII).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.cp.als import cp_als, CPALSResult
from repro.exceptions import ParameterError
from repro.parallel.general import general_mttkrp
from repro.parallel.grid_selection import choose_general_grid, choose_stationary_grid
from repro.parallel.machine import SimulatedMachine
from repro.parallel.stationary import stationary_mttkrp
from repro.tensor.dense import as_ndarray
from repro.utils.validation import check_positive_int, check_rank

#: MTTKRP kernels resolvable by :func:`parallel_cp_als`, mirroring the
#: sequential registry (:data:`repro.cp.als.KERNEL_NAMES`): ``"exact"`` runs
#: Algorithm 3/4, ``"sampled"`` the distributed sampled kernel of
#: :mod:`repro.sketch.parallel` with a caller-chosen distribution, and
#: ``"sampled-tree"`` the same kernel pinned to the segment-tree exact
#: leverage sampler (``distribution="tree-leverage"``, Gram-All-Reduce-only
#: setup).  The sketch subsystem is imported lazily — it layers on this
#: driver, so a module-level import would be circular.
PARALLEL_KERNEL_NAMES = ("exact", "sampled", "sampled-tree")


@dataclass
class ParallelCPALSResult:
    """Outcome of a simulated-parallel CP-ALS run.

    Attributes
    ----------
    als:
        The underlying sequential-quality :class:`CPALSResult` (fits, model).
    machine:
        The simulated machine accumulating communication over all MTTKRPs.
    words_per_iteration:
        Max-per-rank words communicated in each ALS sweep.
    grids:
        The processor grid used for each mode's MTTKRP.
    algorithm:
        ``"stationary"`` or ``"general"``.
    """

    als: CPALSResult
    machine: SimulatedMachine
    words_per_iteration: List[int] = field(default_factory=list)
    grids: List[Sequence[int]] = field(default_factory=list)
    algorithm: str = "stationary"

    @property
    def total_words(self) -> int:
        """Max-per-rank words communicated over the whole run."""
        return self.machine.max_words_communicated


def parallel_cp_als(
    tensor,
    rank: int,
    n_procs: int,
    *,
    algorithm: str = "stationary",
    kernel: str = "exact",
    n_samples: Optional[int] = None,
    sample_distribution: str = "product-leverage",
    n_iter_max: int = 20,
    tol: float = 1e-7,
    seed: Union[None, int, np.random.Generator] = 0,
    init: Union[str, Sequence[np.ndarray]] = "random",
) -> ParallelCPALSResult:
    """Run CP-ALS with every MTTKRP executed on the simulated parallel machine.

    Parameters
    ----------
    tensor:
        Dense ``N``-way tensor.
    rank:
        Target CP rank ``R``.
    n_procs:
        Number of simulated processors ``P``.
    algorithm:
        ``"stationary"`` (Algorithm 3) or ``"general"`` (Algorithm 4).
    kernel:
        ``"exact"`` (the selected algorithm), ``"sampled"``, or
        ``"sampled-tree"`` — the distributed sampled MTTKRP of
        :mod:`repro.sketch.parallel`, resampled on every invocation
        (requires ``algorithm="stationary"``; ``"sampled-tree"`` pins
        ``sample_distribution="tree-leverage"``; see
        :func:`repro.sketch.parallel.parallel_randomized_cp_als` for the full
        randomized driver with an exact-solve fallback).
    n_samples, sample_distribution:
        Draw count and sampling distribution for the sampled kernels
        (defaults mirror the sequential registry entry;
        ``sample_distribution`` is ignored by ``kernel="sampled-tree"``).
    n_iter_max, tol, seed, init:
        Passed to the ALS driver.

    Returns
    -------
    ParallelCPALSResult
    """
    data = as_ndarray(tensor)
    rank = check_rank(rank)
    n_procs = check_positive_int(n_procs, "n_procs")
    if algorithm not in ("stationary", "general"):
        raise ParameterError("algorithm must be 'stationary' or 'general'")
    if kernel not in PARALLEL_KERNEL_NAMES:
        raise ParameterError(
            f"unknown parallel MTTKRP kernel {kernel!r}; use one of {PARALLEL_KERNEL_NAMES}"
        )
    sampled = kernel in ("sampled", "sampled-tree")
    if sampled and algorithm != "stationary":
        raise ParameterError(
            f"kernel={kernel!r} runs on the stationary distribution; use algorithm='stationary'"
        )
    if kernel == "sampled-tree":
        sample_distribution = "tree-leverage"

    machine = SimulatedMachine(n_procs)
    grids: List[Sequence[int]] = []
    if algorithm == "stationary":
        grid = choose_stationary_grid(data.shape, rank, n_procs)
    else:
        grid = choose_general_grid(data.shape, rank, n_procs)
    grids.append(grid)

    sampled_mttkrp_parallel = None
    sample_rng: Union[None, np.random.SeedSequence, np.random.Generator] = None
    if sampled:
        from repro.sketch.parallel.sampled_mttkrp import parallel_sampled_mttkrp

        sampled_mttkrp_parallel = parallel_sampled_mttkrp
        if isinstance(seed, np.random.Generator):
            sample_rng = seed
        elif seed is None:
            sample_rng = np.random.default_rng()
        else:
            # Mirror the sequential registry: spawn an independent stream so
            # the kernel's draws are not the bit stream the initialisation
            # consumes.
            sample_rng = np.random.default_rng(np.random.SeedSequence(seed).spawn(1)[0])

    words_per_iteration: List[int] = []
    words_before_sweep = {"value": 0, "mttkrps_in_sweep": 0}

    def counted_kernel(local_tensor, factors, mode):
        if sampled:
            result = sampled_mttkrp_parallel(
                local_tensor,
                factors,
                mode,
                grid,
                n_samples=n_samples,
                distribution=sample_distribution,
                seed=sample_rng,
                machine=machine,
            )
        elif algorithm == "stationary":
            result = stationary_mttkrp(local_tensor, factors, mode, grid, machine=machine)
        else:
            result = general_mttkrp(local_tensor, factors, mode, grid, machine=machine)
        words_before_sweep["mttkrps_in_sweep"] += 1
        if words_before_sweep["mttkrps_in_sweep"] % data.ndim == 0:
            current = machine.max_words_communicated
            words_per_iteration.append(current - words_before_sweep["value"])
            words_before_sweep["value"] = current
        return result.assemble()

    als_result = cp_als(
        data,
        rank,
        n_iter_max=n_iter_max,
        tol=tol,
        seed=seed,
        init=init,
        kernel=counted_kernel,
    )
    return ParallelCPALSResult(
        als=als_result,
        machine=machine,
        words_per_iteration=words_per_iteration,
        grids=grids,
        algorithm=algorithm,
    )
