"""CP-ALS whose MTTKRPs run on the simulated distributed machine.

This driver measures the communication that the MTTKRP kernels contribute to
a full CP-ALS workload: every mode update performs its MTTKRP with
Algorithm 3 (or Algorithm 4) on a :class:`~repro.parallel.SimulatedMachine`
and the per-iteration word counts are recorded.  The small dense linear
algebra of the normal equations (R x R solves and Gram updates) is treated as
replicated — its communication is lower order, exactly as in the paper's
discussion of the CP-ALS context (Section VII).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.cp.als import cp_als, CPALSResult
from repro.exceptions import ParameterError
from repro.parallel.general import general_mttkrp
from repro.parallel.grid_selection import choose_general_grid, choose_stationary_grid
from repro.parallel.machine import SimulatedMachine
from repro.parallel.stationary import stationary_mttkrp
from repro.tensor.dense import as_ndarray
from repro.utils.validation import check_positive_int, check_rank


@dataclass
class ParallelCPALSResult:
    """Outcome of a simulated-parallel CP-ALS run.

    Attributes
    ----------
    als:
        The underlying sequential-quality :class:`CPALSResult` (fits, model).
    machine:
        The simulated machine accumulating communication over all MTTKRPs.
    words_per_iteration:
        Max-per-rank words communicated in each ALS sweep.
    grids:
        The processor grid used for each mode's MTTKRP.
    algorithm:
        ``"stationary"`` or ``"general"``.
    """

    als: CPALSResult
    machine: SimulatedMachine
    words_per_iteration: List[int] = field(default_factory=list)
    grids: List[Sequence[int]] = field(default_factory=list)
    algorithm: str = "stationary"

    @property
    def total_words(self) -> int:
        """Max-per-rank words communicated over the whole run."""
        return self.machine.max_words_communicated


def parallel_cp_als(
    tensor,
    rank: int,
    n_procs: int,
    *,
    algorithm: str = "stationary",
    n_iter_max: int = 20,
    tol: float = 1e-7,
    seed: Union[None, int, np.random.Generator] = 0,
    init: Union[str, Sequence[np.ndarray]] = "random",
) -> ParallelCPALSResult:
    """Run CP-ALS with every MTTKRP executed on the simulated parallel machine.

    Parameters
    ----------
    tensor:
        Dense ``N``-way tensor.
    rank:
        Target CP rank ``R``.
    n_procs:
        Number of simulated processors ``P``.
    algorithm:
        ``"stationary"`` (Algorithm 3) or ``"general"`` (Algorithm 4).
    n_iter_max, tol, seed, init:
        Passed to the ALS driver.

    Returns
    -------
    ParallelCPALSResult
    """
    data = as_ndarray(tensor)
    rank = check_rank(rank)
    n_procs = check_positive_int(n_procs, "n_procs")
    if algorithm not in ("stationary", "general"):
        raise ParameterError("algorithm must be 'stationary' or 'general'")

    machine = SimulatedMachine(n_procs)
    grids: List[Sequence[int]] = []
    if algorithm == "stationary":
        grid = choose_stationary_grid(data.shape, rank, n_procs)
    else:
        grid = choose_general_grid(data.shape, rank, n_procs)
    grids.append(grid)

    words_per_iteration: List[int] = []
    words_before_sweep = {"value": 0, "mttkrps_in_sweep": 0}

    def counted_kernel(local_tensor, factors, mode):
        if algorithm == "stationary":
            result = stationary_mttkrp(local_tensor, factors, mode, grid, machine=machine)
        else:
            result = general_mttkrp(local_tensor, factors, mode, grid, machine=machine)
        words_before_sweep["mttkrps_in_sweep"] += 1
        if words_before_sweep["mttkrps_in_sweep"] % data.ndim == 0:
            current = machine.max_words_communicated
            words_per_iteration.append(current - words_before_sweep["value"])
            words_before_sweep["value"] = current
        return result.assemble()

    als_result = cp_als(
        data,
        rank,
        n_iter_max=n_iter_max,
        tol=tol,
        seed=seed,
        init=init,
        kernel=counted_kernel,
    )
    return ParallelCPALSResult(
        als=als_result,
        machine=machine,
        words_per_iteration=words_per_iteration,
        grids=grids,
        algorithm=algorithm,
    )
