"""Dense CP-ALS with a pluggable MTTKRP kernel.

The alternating least squares algorithm (Section II-A of the paper) fixes all
factor matrices except one and solves the linear least-squares problem for
the free one via the normal equations:

    ``A^(n) <- MTTKRP(X, {A^(k)}, n) @ pinv( hadamard_{k != n} A^(k)T A^(k) )``

The MTTKRP dominates the cost; which kernel evaluates it is selectable so the
same driver exercises the vectorised kernel, the matmul baseline, or a
user-supplied (e.g. counted) kernel.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.backend import Backend, get_backend
from repro.core.blocked_mttkrp import blocked_mttkrp, dense_mttkrp
from repro.core.dimtree import DimensionTreeKernel
from repro.core.kernels import mttkrp
from repro.core.matmul_baseline import mttkrp_via_matmul
from repro.core.sweep_kernel import (
    PerCallKernel,
    SweepKernel,
    as_sweep_kernel,
    check_kernel_name,
)
from repro.cp.initialization import initialize_factors
from repro.exceptions import ConvergenceWarning, FaultError, ParameterError
from repro.observe.instrument import inc as observe_inc
from repro.observe.tracer import trace
from repro.resilience.checkpoint import CheckpointState, CheckpointStore
from repro.tensor.dense import as_ndarray
from repro.tensor.kruskal import KruskalTensor
from repro.utils.validation import check_rank

#: Signature of a pluggable MTTKRP kernel: (tensor, factors, mode) -> (I_mode, R) array.
MTTKRPKernel = Callable[[np.ndarray, Sequence[Optional[np.ndarray]], int], np.ndarray]

_KERNELS = {
    "einsum": mttkrp,
    "matmul": lambda tensor, factors, mode: mttkrp_via_matmul(tensor, factors, mode),
}

#: Kernel names resolvable by :func:`cp_als` (``"sampled"``, ``"sampled-tree"``
#: and ``"sampled-dimtree"`` are registered lazily — see
#: :func:`_resolve_kernel`; ``"dimtree"`` is the sweep-aware dimension-tree
#: engine of :mod:`repro.core.dimtree`, ``"sampled-dimtree"`` the fused
#: sampled engine of :mod:`repro.core.sampled_dimtree` that serves leverage
#: draws from the tree's cached partial contractions; ``"blocked"`` is the
#: cache-blocked tiled-GEMM kernel of :mod:`repro.core.blocked_mttkrp` and
#: ``"auto"`` its cost-model dispatch between einsum and blocked).
KERNEL_NAMES = (
    "einsum",
    "matmul",
    "blocked",
    "auto",
    "dimtree",
    "sampled",
    "sampled-tree",
    "sampled-dimtree",
)

#: Graceful-degradation policies for a poisoned (non-finite) MTTKRP output.
FAULT_POLICIES = ("raise", "retry", "degrade")


def _check_finite(name: str, array: np.ndarray) -> None:
    """Reject NaN/Inf inputs up front (they silently poison every sweep)."""
    if not np.all(np.isfinite(array)):
        raise ParameterError(f"{name} contains non-finite values (NaN or Inf)")


def _solve_normal_equations(gram: np.ndarray, b: np.ndarray, rank: int) -> np.ndarray:
    """Solve the normal equations ``factor @ gram = b``, clean solve first.

    The historical unconditional ``1e-12`` ridge perturbed every factor at
    the regularizer's scale even when the Gram was perfectly conditioned.
    Now the escalation is: clean ``solve``; on ``LinAlgError`` or non-finite
    output, least squares (counted as ``als.solve.fallback``); only if that
    also fails, the ridge (counted as ``als.solve.ridge``).
    """
    try:
        factor = np.linalg.solve(gram.T, b.T).T
        if np.all(np.isfinite(factor)):
            return factor
    except np.linalg.LinAlgError:
        pass
    observe_inc("als.solve.fallback")
    try:
        factor = np.linalg.lstsq(gram.T, b.T, rcond=None)[0].T
        if np.all(np.isfinite(factor)):
            return factor
    except np.linalg.LinAlgError:
        pass
    observe_inc("als.solve.ridge")
    return np.linalg.solve(gram.T + 1e-12 * np.eye(rank), b.T).T


def _recover_mttkrp(
    sweep_kernel: SweepKernel,
    data: np.ndarray,
    factors: Sequence[np.ndarray],
    mode: int,
    on_fault: str,
) -> Tuple[np.ndarray, int]:
    """Apply the ``on_fault`` policy to a poisoned (non-finite) MTTKRP.

    Returns the recovered MTTKRP and the number of extra kernel evaluations
    performed.  ``"retry"`` invalidates the kernel's caches through its
    staleness authority and recomputes; if that cannot help (cache-less
    kernel, or the recompute is still poisoned) it degrades — like
    ``"degrade"`` — to the exact einsum kernel on the raw tensor.
    """
    observe_inc("fault.detected")
    if on_fault == "raise":
        raise FaultError(
            f"MTTKRP for mode {mode} produced non-finite values (poisoned "
            "kernel cache?); rerun with on_fault='retry' to recover"
        )
    extra_calls = 0
    with trace("recovery", mode=mode, policy=on_fault):
        observe_inc("recovery.attempt")
        if on_fault == "retry" and sweep_kernel.invalidate_caches():
            b = sweep_kernel.mttkrp(data, factors, mode)
            extra_calls += 1
            if np.all(np.isfinite(b)):
                observe_inc("recovery.recovered")
                return b, extra_calls
        # Graceful degradation: the exact einsum kernel on the raw tensor.
        b = mttkrp(data, factors, mode)
        extra_calls += 1
        if not np.all(np.isfinite(b)):
            raise FaultError(
                f"exact-kernel fallback for mode {mode} still produced "
                "non-finite values; the tensor or factors themselves are corrupted"
            )
        observe_inc("recovery.degraded")
    return b, extra_calls


@dataclass
class CPALSResult:
    """Outcome of a CP-ALS run.

    Attributes
    ----------
    model:
        The fitted :class:`~repro.tensor.kruskal.KruskalTensor` (normalised).
    fits:
        Fit value ``1 - ||X - X_hat|| / ||X||`` after each iteration.
    n_iterations:
        Number of completed ALS sweeps.
    converged:
        Whether the fit change dropped below the tolerance before ``max_iter``.
    mttkrp_calls:
        Total number of MTTKRP invocations performed.
    """

    model: KruskalTensor
    fits: List[float] = field(default_factory=list)
    n_iterations: int = 0
    converged: bool = False
    mttkrp_calls: int = 0

    @property
    def final_fit(self) -> float:
        """Fit after the last iteration (0.0 if no iteration ran)."""
        return self.fits[-1] if self.fits else 0.0


def _kernel_seed(
    seed: Union[None, int, np.random.Generator],
) -> Union[None, np.random.Generator, np.random.SeedSequence]:
    """Independent stream for a sampled kernel's draws (not the init's bits)."""
    if seed is None or isinstance(seed, np.random.Generator):
        return seed
    return np.random.SeedSequence(seed).spawn(1)[0]


def _resolve_kernel(
    kernel: Union[str, MTTKRPKernel, SweepKernel],
    seed: Union[None, int, np.random.Generator] = None,
    invalidation: str = "exact",
    invalidation_tol: float = 1e-2,
    backend: Union[None, str, Backend] = None,
    threads: Optional[int] = None,
) -> SweepKernel:
    if isinstance(kernel, SweepKernel) or callable(kernel):
        if backend is not None and get_backend(backend).name != "numpy":
            raise ParameterError(
                "backend selection applies only to named kernels; "
                "explicit kernel objects manage their own execution backend"
            )
        return as_sweep_kernel(kernel)
    check_kernel_name(kernel, KERNEL_NAMES)
    exec_backend = get_backend(backend)
    if exec_backend.name != "numpy" and kernel not in (
        "einsum",
        "dimtree",
        "sampled-dimtree",
    ):
        raise ParameterError(
            f"kernel {kernel!r} does not support non-default execution backends; "
            "use 'einsum', 'dimtree', or 'sampled-dimtree'"
        )
    if kernel == "dimtree":
        # A fresh engine per run: the tree binds to the run's tensor on the
        # first call and caches partial contractions across the whole run.
        return DimensionTreeKernel(
            invalidation=invalidation,
            residual_tol=invalidation_tol,
            backend=exec_backend,
        )
    if kernel == "sampled-dimtree":
        # The fused engine: leverage draws served from the dimension tree's
        # cached partial contractions (lazy import for the same layering
        # reason as the plain sampled kernels below).
        from repro.core.sampled_dimtree import SampledDimtreeKernel

        return SampledDimtreeKernel(
            seed=_kernel_seed(seed),
            invalidation=invalidation,
            residual_tol=invalidation_tol,
            backend=exec_backend,
        )
    if kernel == "einsum":
        return PerCallKernel(
            lambda tensor, factors, mode: mttkrp(
                tensor, factors, mode, backend=exec_backend
            )
        )
    if kernel == "blocked":
        return PerCallKernel(
            lambda tensor, factors, mode: blocked_mttkrp(
                tensor, factors, mode, backend=exec_backend, threads=threads
            )
        )
    if kernel == "auto":
        return PerCallKernel(
            lambda tensor, factors, mode: dense_mttkrp(
                tensor, factors, mode, backend=exec_backend, threads=threads
            )
        )
    if kernel in ("sampled", "sampled-tree"):
        # Imported lazily: repro.sketch layers on this driver, so a module-level
        # import would be circular.  A fresh kernel is built per run so that an
        # explicit seed makes the whole ALS run reproducible; it resamples on
        # every call — "sampled" from the product-of-factor-leverage
        # distribution, "sampled-tree" from the exact Khatri-Rao leverage
        # distribution via the segment-tree sampler (both never materialize a
        # length-J vector).
        from repro.sketch.sampled_mttkrp import make_sampled_kernel

        distribution = "tree-leverage" if kernel == "sampled-tree" else "product-leverage"
        fn = make_sampled_kernel(seed=_kernel_seed(seed), distribution=distribution)
        # Hand the closure's generator to the adapter so checkpoint/restore
        # can capture the bit-stream position (the closure's only state).
        return PerCallKernel(fn, rng=fn.rng)
    return PerCallKernel(_KERNELS[kernel])


def cp_als(
    tensor,
    rank: int,
    *,
    n_iter_max: int = 50,
    tol: float = 1e-7,
    init: Union[str, Sequence[np.ndarray]] = "random",
    seed: Union[None, int, np.random.Generator] = None,
    kernel: Union[str, MTTKRPKernel] = "einsum",
    invalidation: str = "exact",
    invalidation_tol: float = 1e-2,
    backend: Union[None, str, Backend] = None,
    threads: Optional[int] = None,
    warn_on_nonconvergence: bool = False,
    on_fault: str = "raise",
    checkpoint_store: Optional[CheckpointStore] = None,
    resume_from: Optional[CheckpointState] = None,
) -> CPALSResult:
    """Fit a rank-``R`` CP decomposition with alternating least squares.

    Parameters
    ----------
    tensor:
        Dense ``N``-way tensor.
    rank:
        Target CP rank ``R``.
    n_iter_max:
        Maximum number of ALS sweeps (each sweep updates every mode once).
    tol:
        Convergence tolerance on the change in fit between sweeps.
    init:
        ``"random"``, ``"svd"``, or an explicit list of initial factor
        matrices.
    seed:
        Seed for random initialisation.
    kernel:
        Which MTTKRP kernel to use: a name from :data:`KERNEL_NAMES`
        (``"dimtree"`` caches partial contractions across the sweep via
        :class:`~repro.core.dimtree.DimensionTreeKernel`), a per-call
        callable, or a :class:`~repro.core.sweep_kernel.SweepKernel`
        instance (the driver announces sweep starts and factor updates to
        sweep-aware kernels).
    invalidation, invalidation_tol:
        Cache-invalidation policy of the dimension-tree kernels
        (``"dimtree"`` / ``"sampled-dimtree"``): the default ``"exact"``
        invalidates dependent cached partials on every factor replacement;
        ``"residual"`` keeps them while the factor's accumulated relative
        drift stays within ``invalidation_tol`` (see
        :class:`~repro.core.dimtree.FactorGate`).  Ignored by the per-call
        kernels and by explicitly constructed kernel instances.
    backend:
        Execution backend name or instance
        (:func:`repro.backend.get_backend`) used by the named kernels that
        support backend dispatch (``"einsum"``, ``"dimtree"``,
        ``"sampled-dimtree"``).  Selecting a non-default backend for any
        other kernel raises :class:`~repro.exceptions.ParameterError`.
    threads:
        Thread count for the kernels that execute chunks on the shared
        thread executor (``"blocked"`` / ``"auto"``; ``None`` consults the
        ``REPRO_THREADS`` environment variable, default 1).  Results are
        bitwise identical for every value — the blocked kernel parallelises
        only over disjoint output-row tiles.  Ignored by the other kernels.
    warn_on_nonconvergence:
        Emit a :class:`~repro.exceptions.ConvergenceWarning` when the loop
        exhausts ``n_iter_max`` without meeting ``tol``.
    on_fault:
        Policy for a poisoned (non-finite) MTTKRP output
        (:data:`FAULT_POLICIES`): ``"raise"`` (default) raises
        :class:`~repro.exceptions.FaultError`; ``"retry"`` invalidates the
        kernel's caches through its staleness authority and recomputes,
        degrading to the exact einsum kernel if that cannot help;
        ``"degrade"`` goes straight to the exact kernel.
    checkpoint_store:
        When given, a :class:`~repro.resilience.checkpoint.CheckpointState`
        is saved into it after every ``checkpoint_store.every``-th completed
        sweep (factors, fit history, and the kernel's full cache/RNG state).
    resume_from:
        A previously captured checkpoint: the run resumes at sweep
        ``resume_from.iteration + 1``, bitwise identical to the uninterrupted
        run for every registry kernel.  The ``init`` and ``seed`` of the
        original run should be passed unchanged (they are ignored for state,
        but seed still feeds a fresh sampled kernel unless the kernel state
        overrides it — which the checkpoint does).

    Returns
    -------
    CPALSResult
    """
    data = as_ndarray(tensor)
    rank = check_rank(rank)
    if data.ndim < 2:
        raise ParameterError("CP-ALS requires a tensor with at least 2 modes")
    if on_fault not in FAULT_POLICIES:
        raise ParameterError(
            f"unknown on_fault policy {on_fault!r}; use one of {FAULT_POLICIES}"
        )
    _check_finite("tensor", data)
    sweep_kernel = _resolve_kernel(
        kernel, seed, invalidation, invalidation_tol, backend, threads
    )

    if isinstance(init, str):
        factors = initialize_factors(data, rank, method=init, seed=seed)
    else:
        factors = [np.asarray(f, dtype=np.float64).copy() for f in init]
        if len(factors) != data.ndim:
            raise ParameterError("explicit init must provide one factor matrix per mode")
        for mode, factor in enumerate(factors):
            _check_finite(f"init factor for mode {mode}", factor)

    norm_x = float(np.linalg.norm(data.ravel()))
    weights = np.ones(rank, dtype=np.float64)
    grams = [f.T @ f for f in factors]

    fits: List[float] = []
    converged = False
    mttkrp_calls = 0
    previous_fit = -np.inf
    last_mode = data.ndim - 1

    start_iteration = 0
    if resume_from is not None:
        resume_from.check_problem(data.shape, rank)
        ckpt = resume_from.copy()
        factors = [np.asarray(f, dtype=np.float64) for f in ckpt.factors]
        weights = np.asarray(ckpt.weights, dtype=np.float64)
        # Recomputed, not stored: ``f.T @ f`` of bitwise-equal factors is
        # bitwise equal, so the Gram caches need no checkpoint entries.
        grams = [f.T @ f for f in factors]
        fits = list(ckpt.fits)
        previous_fit = ckpt.previous_fit
        mttkrp_calls = ckpt.mttkrp_calls
        start_iteration = int(ckpt.iteration)
        sweep_kernel.restore_state(ckpt.kernel_state)
        observe_inc("checkpoint.restored")

    iteration = start_iteration
    for iteration in range(start_iteration + 1, n_iter_max + 1):
        final_mttkrp = None
        sweep_kernel.begin_sweep(iteration)
        with trace("sweep", iteration=iteration):
            # Per-sweep Hadamard cache: ``suffix[m]`` is the product of the
            # pre-sweep Grams of modes ``m..N-1``; ``prefix`` accumulates the
            # already-updated Grams of modes ``0..mode-1``.  The normal-equation
            # matrix for ``mode`` is ``prefix ∘ suffix[mode + 1]``, so only the
            # Gram of the factor just updated is folded in per mode instead of
            # re-multiplying all ``N - 1`` operands.
            suffix: List[np.ndarray] = [None] * (data.ndim + 1)  # type: ignore[list-item]
            suffix[data.ndim] = np.ones((rank, rank), dtype=np.float64)
            for m in range(data.ndim - 1, -1, -1):
                suffix[m] = grams[m] * suffix[m + 1]
            prefix = np.ones((rank, rank), dtype=np.float64)
            for mode in range(data.ndim):
                with trace("mode", mode=mode):
                    b = sweep_kernel.mttkrp(data, factors, mode)
                    mttkrp_calls += 1
                    if not np.all(np.isfinite(b)):
                        b, extra = _recover_mttkrp(
                            sweep_kernel, data, factors, mode, on_fault
                        )
                        mttkrp_calls += extra
                    gram = prefix * suffix[mode + 1]
                    factor = _solve_normal_equations(gram, b, rank)
                    # Column normalisation keeps the factors well-scaled across sweeps.
                    norms = np.linalg.norm(factor, axis=0)
                    norms = np.where(norms > 0, norms, 1.0)
                    factor = factor / norms[None, :]
                    weights = norms
                    factors[mode] = factor
                    grams[mode] = factor.T @ factor
                    sweep_kernel.factor_updated(mode, factor)
                    prefix = prefix * grams[mode]
                    if mode == last_mode:
                        final_mttkrp = b

            # Efficient fit evaluation (Kolda & Bader, Section 3.4): using the last
            # MTTKRP avoids reconstructing the dense tensor; ``prefix`` now holds
            # the Hadamard product of all updated Grams.
            norm_model_sq = float(weights @ prefix @ weights)
            inner = float(np.sum(final_mttkrp * (factors[last_mode] * weights[None, :])))
            residual_sq = max(norm_x**2 + norm_model_sq - 2.0 * inner, 0.0)
            fit = 1.0 - np.sqrt(residual_sq) / norm_x if norm_x > 0 else 1.0
            fits.append(float(fit))

        if abs(fit - previous_fit) < tol:
            converged = True
            break
        previous_fit = fit

        if checkpoint_store is not None and checkpoint_store.wants(iteration):
            checkpoint_store.save(
                CheckpointState(
                    iteration=iteration,
                    factors=factors,
                    weights=weights,
                    fits=fits,
                    previous_fit=float(previous_fit),
                    mttkrp_calls=mttkrp_calls,
                    kernel_state=sweep_kernel.capture_state(),
                    shape=tuple(data.shape),
                    rank=rank,
                )
            )
            observe_inc("checkpoint.saved")

    if not converged and warn_on_nonconvergence:
        warnings.warn(
            f"CP-ALS did not converge within {n_iter_max} iterations", ConvergenceWarning
        )

    model = KruskalTensor([f.copy() for f in factors], weights.copy()).arrange()
    return CPALSResult(
        model=model,
        fits=fits,
        n_iterations=iteration,
        converged=converged,
        mttkrp_calls=mttkrp_calls,
    )
