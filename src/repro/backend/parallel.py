"""Thread-parallel chunk executor shared by the blocked/chunked kernels.

Both chunked kernels — the blocked dense MTTKRP of
:mod:`repro.core.blocked_mttkrp` and the chunked sparse MTTKRP of
:mod:`repro.tensor.sparse` — decompose their work into *independent* chunk
tasks and run them through :func:`parallel_map`.  The executor's contract is
deliberately stronger than "runs things concurrently":

* **Results are returned in task-index order**, whatever order the tasks
  finished in.
* **The arithmetic performed is identical for every thread count** (including
  the inline ``threads=1`` path): a task computes the same values no matter
  which worker runs it, and any cross-task accumulation goes through
  :func:`ordered_reduce` — a *fixed-order* linear reduction tree that folds
  partial results in task order on the calling thread.  Folding partial ``i``
  into an accumulator that started from partial ``0`` reproduces the serial
  left-to-right accumulation bit for bit (IEEE-754 addition of the first
  operand onto a fresh zero buffer is exact), so the threaded kernels are
  bitwise equal to their serial counterparts for any thread count.  This is
  the same determinism discipline the chunked sparse kernel's single-chunk
  fallback already follows, lifted to the thread dimension.

Thread counts resolve through :func:`resolve_threads`: an explicit argument
wins, otherwise the ``REPRO_THREADS`` environment variable, otherwise 1
(serial).  :func:`effective_cpu_count` reports the cores the process may
actually use (CPU affinity aware) — the quantity the wall-clock model of
:mod:`repro.costmodel.kernel_timing` uses to predict whether threading can
pay at all: on a single-core machine it never does, and the model says so.

Worker tasks must not touch the observability layer (the tracer's span stack
is context-local to the calling thread); callers tally chunk/task counters in
bulk from the coordinating thread instead.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence, TypeVar

from repro.exceptions import ParameterError

__all__ = [
    "THREADS_ENV_VAR",
    "MAX_THREADS",
    "effective_cpu_count",
    "resolve_threads",
    "parallel_map",
    "ordered_reduce",
]

T = TypeVar("T")
R = TypeVar("R")

#: Environment variable consulted when no explicit thread count is given —
#: the knob the CI threaded leg sets (``REPRO_THREADS=4``).
THREADS_ENV_VAR = "REPRO_THREADS"

#: Upper bound on accepted thread counts: far above any sensible request,
#: low enough that a typo (``REPRO_THREADS=400``) fails loudly instead of
#: spawning hundreds of workers.
MAX_THREADS = 128


def effective_cpu_count() -> int:
    """CPU cores this process may run on (affinity-aware, at least 1)."""
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            return max(1, len(getaffinity(0)))
        except OSError:  # pragma: no cover - exotic platforms
            pass
    return max(1, os.cpu_count() or 1)


def resolve_threads(threads: Optional[int] = None) -> int:
    """Resolve a thread-count request to a validated positive integer.

    ``None`` falls back to the :data:`THREADS_ENV_VAR` environment variable
    (itself defaulting to 1 when unset or empty).  The result is *not*
    clamped to the machine's core count: requesting more threads than cores
    is legal (the kernels stay bitwise identical), merely unprofitable — the
    cost model, not the resolver, is the judge of what pays.
    """
    if threads is None:
        raw = os.environ.get(THREADS_ENV_VAR, "").strip()
        if not raw:
            return 1
        try:
            threads = int(raw)
        except ValueError:
            raise ParameterError(
                f"{THREADS_ENV_VAR} must be a positive integer, got {raw!r}"
            ) from None
    threads = int(threads)
    if threads < 1 or threads > MAX_THREADS:
        raise ParameterError(
            f"threads must be in [1, {MAX_THREADS}], got {threads}"
        )
    return threads


#: Shared executors keyed by worker count.  Pool threads are started once and
#: reused across kernel calls (an MTTKRP inside an ALS sweep runs thousands
#: of times; per-call pool construction would dominate small problems).
_EXECUTORS: Dict[int, ThreadPoolExecutor] = {}
_EXECUTORS_LOCK = threading.Lock()


def _executor(workers: int) -> ThreadPoolExecutor:
    with _EXECUTORS_LOCK:
        pool = _EXECUTORS.get(workers)
        if pool is None:
            pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix=f"repro-chunk-{workers}"
            )
            _EXECUTORS[workers] = pool
        return pool


def parallel_map(
    fn: Callable[[T], R], items: Sequence[T], *, threads: Optional[int] = None
) -> List[R]:
    """Apply ``fn`` to every item, possibly on worker threads; ordered results.

    ``threads`` resolves through :func:`resolve_threads`; a resolved count of
    1 (or fewer items than 2) runs inline on the calling thread — the same
    code path, no executor involved.  Tasks must be independent: they may not
    rely on execution order, and any shared accumulation must happen on the
    caller's side (see :func:`ordered_reduce`).  The first task exception is
    re-raised after all submitted tasks have settled.
    """
    threads = resolve_threads(threads)
    items = list(items)
    if threads <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    workers = min(threads, len(items))
    futures = [_executor(workers).submit(fn, item) for item in items]
    results: List[R] = []
    first_error: Optional[BaseException] = None
    for future in futures:
        try:
            results.append(future.result())
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            if first_error is None:
                first_error = exc
    if first_error is not None:
        raise first_error
    return results


def ordered_reduce(partials: Sequence, combine: Callable) -> object:
    """Fold ``partials`` left to right with ``combine`` (fixed reduction order).

    The reduction tree is linear and fixed by task index — independent of
    which threads produced the partials and of the thread count — so a
    threaded kernel that accumulates through this function is bitwise
    deterministic.  ``combine(accumulator, partial)`` may update the
    accumulator in place and must return it.
    """
    partials = list(partials)
    if not partials:
        raise ParameterError("ordered_reduce needs at least one partial result")
    accumulator = partials[0]
    for partial in partials[1:]:
        accumulator = combine(accumulator, partial)
    return accumulator
