"""Optional Numba backend: compiled scatter-add on host NumPy arrays.

Numba is not an array-namespace provider — it accelerates loops over NumPy
memory — so this backend shares NumPy's namespace (einsum and tensordot run
through NumPy unchanged) and replaces only the scatter-add primitive with a
JIT-compiled loop that fuses the row gather and the duplicate-summing
accumulation without any temporary.  Everything degrades gracefully: when
``numba`` is not installed the backend reports unavailable and
:func:`repro.backend.get_backend` raises
:class:`~repro.exceptions.BackendUnavailableError` instead of importing it.
"""

from __future__ import annotations

import numpy as np

from repro.backend.numpy_backend import NumpyBackend


class NumbaBackend(NumpyBackend):
    """NumPy namespace with a compiled duplicate-summing scatter-add."""

    name = "numba"

    def __init__(self) -> None:
        super().__init__()
        self._scatter = None
        self._checked = False
        self._importable = False

    def available(self) -> bool:
        if not self._checked:
            self._checked = True
            try:
                import numba  # noqa: F401
            except ImportError:
                self._importable = False
            else:
                self._importable = True
        return self._importable

    def _compiled_scatter(self):
        if self._scatter is None:
            from numba import njit

            @njit(cache=True)
            def scatter(out, rows, block):  # pragma: no cover - compiled
                for i in range(rows.shape[0]):
                    row = rows[i]
                    for j in range(block.shape[1]):
                        out[row, j] += block[i, j]

            self._scatter = scatter
        return self._scatter

    def scatter_add_rows(self, out, rows, block) -> None:
        # The compiled loop needs contiguous memory; column-slice views of
        # the output are not, so scatter into a dense scratch and add once.
        scatter = self._compiled_scatter()
        if out.flags["C_CONTIGUOUS"]:
            scatter(out, rows, np.ascontiguousarray(block))
        else:
            scratch = np.zeros(out.shape, dtype=out.dtype)
            scatter(scratch, rows, np.ascontiguousarray(block))
            out += scratch
