"""Execution-backend protocol and name registry.

The kernels in :mod:`repro.core` and :mod:`repro.tensor.sparse` express their
arithmetic against a tiny :class:`Backend` surface — an array namespace
resolved through the array-API standard plus the one operation the standard
does not cover (duplicate-summing row scatter-add) — so the *same* registry
kernel names (``kernel="einsum"``, ``"dimtree"``, ...) run on whatever
hardware is present.  NumPy is the always-available default; Numba and CuPy
register themselves as optional backends that report :meth:`Backend.available`
``False`` (and raise :class:`~repro.exceptions.BackendUnavailableError` when
requested) if their import is missing, so the absence of an accelerator skips
work rather than failing it.

Backends are looked up by *name* through :func:`get_backend`; passing
``None`` selects the default, passing an instance passes it through.  The
instances are process-wide singletons: a backend may hold compiled kernels
(Numba) or device state (CuPy) that should be built once.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

import numpy as np

from repro.exceptions import BackendUnavailableError, ParameterError

#: Name of the backend :func:`get_backend` resolves when given ``None``.
DEFAULT_BACKEND_NAME = "numpy"


class Backend:
    """One execution target for the MTTKRP kernels.

    Subclasses bind a *name* (the registry key), an array namespace, and the
    operations below.  Everything accepts and returns arrays of the backend's
    namespace except :meth:`to_numpy`, which always lands on host NumPy —
    kernel entry points convert inputs once, compute natively, and convert
    the result back, so drivers keep their NumPy-in/NumPy-out contract.
    """

    #: Registry key (subclasses override).
    name: str = "abstract"

    def available(self) -> bool:
        """Whether this backend's dependency stack is importable and usable."""
        raise NotImplementedError

    def namespace(self):
        """The backend's array namespace, resolved via the array-API standard.

        Implementations prefer the namespace an array of the backend reports
        through ``__array_namespace__`` (the standard's entry point, available
        on NumPy >= 2.0 and CuPy >= 13) and fall back to the raw module —
        which is namespace-compatible for every operation the kernels use —
        on older versions.
        """
        raise NotImplementedError

    # -- array movement ------------------------------------------------------
    def asarray(self, array, dtype=None):
        """Bring ``array`` into this backend's namespace (no copy when native)."""
        xp = self.namespace()
        return xp.asarray(array) if dtype is None else xp.asarray(array, dtype=dtype)

    def to_numpy(self, array) -> np.ndarray:
        """Bring a backend-native array back to host NumPy."""
        return np.asarray(array)

    # -- the operations the kernels need -------------------------------------
    def einsum(self, spec: str, *operands, optimize=True):
        """Evaluate ``spec`` over backend-native operands (path pass-through)."""
        return self.namespace().einsum(spec, *operands, optimize=optimize)

    def tensordot(self, a, b, axes):
        """Tensor contraction of backend-native arrays."""
        return self.namespace().tensordot(a, b, axes=axes)

    def zeros(self, shape, dtype=np.float64):
        """Backend-native zero-initialised array."""
        return self.namespace().zeros(shape, dtype=dtype)

    def scatter_add_rows(self, out, rows, block) -> None:
        """Accumulate ``out[rows[i], :] += block[i, :]`` with duplicates summed.

        The one primitive outside the array-API standard that the sparse
        chunked kernel needs; each backend supplies its fastest form (NumPy:
        per-column ``bincount``; Numba: a compiled scatter loop; CuPy:
        ``cupyx.scatter_add``).  ``out`` may be a writable column-slice view.
        """
        raise NotImplementedError

    def synchronize(self) -> None:  # noqa: B027 - optional device barrier
        """Wait for device work to finish (no-op on host backends)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"<{type(self).__name__} name={self.name!r} available={self.available()}>"


#: name -> singleton instance, in registration order (NumPy registers first).
_REGISTRY: Dict[str, Backend] = {}


def register_backend(backend: Backend) -> Backend:
    """Register a backend instance under its ``name`` (later wins, like dicts)."""
    if not isinstance(backend, Backend):
        raise ParameterError(f"not a Backend instance: {backend!r}")
    _REGISTRY[backend.name] = backend
    return backend


def backend_names() -> List[str]:
    """Every registered backend name, available or not, in registration order."""
    return list(_REGISTRY)


def available_backend_names() -> List[str]:
    """Names of the registered backends whose dependency stack is importable."""
    return [name for name, backend in _REGISTRY.items() if backend.available()]


def get_backend(backend: Union[None, str, Backend] = None) -> Backend:
    """Resolve ``backend`` to a usable :class:`Backend` instance.

    ``None`` selects the default (``"numpy"``), a string is looked up in the
    registry, and an instance passes through unchanged.  An unknown name
    raises :class:`~repro.exceptions.ParameterError`; a known-but-missing one
    raises :class:`~repro.exceptions.BackendUnavailableError` so callers (and
    tests) can skip rather than mask a typo.
    """
    if backend is None:
        backend = DEFAULT_BACKEND_NAME
    if isinstance(backend, Backend):
        return backend
    resolved: Optional[Backend] = _REGISTRY.get(backend)
    if resolved is None:
        raise ParameterError(
            f"unknown execution backend {backend!r}; "
            f"registered backends: {', '.join(sorted(_REGISTRY))}"
        )
    if not resolved.available():
        raise BackendUnavailableError(
            f"backend {resolved.name!r} is registered but its dependencies are "
            f"not installed; available backends: {', '.join(available_backend_names())}"
        )
    return resolved
