"""Optional CuPy backend: device execution behind the same kernel names.

CuPy implements the array-API standard (``__array_namespace__`` on >= 13),
so the dense einsum/tensordot contractions run device-side unchanged; the
sparse kernel's scatter-add maps to ``cupyx.scatter_add``.  Availability
requires both an importable ``cupy`` and a visible CUDA device — an installed
wheel on a GPU-less node still reports unavailable, keeping the skip-not-fail
contract of the optional-backend test matrix.
"""

from __future__ import annotations

import numpy as np

from repro.backend.base import Backend


class CupyBackend(Backend):
    """CUDA execution via CuPy (optional; requires a visible device)."""

    name = "cupy"

    def __init__(self) -> None:
        self._checked = False
        self._usable = False
        self._cupy = None

    def available(self) -> bool:
        if not self._checked:
            self._checked = True
            try:
                import cupy

                cupy.cuda.runtime.getDeviceCount()
            except Exception:
                self._usable = False
            else:
                self._cupy = cupy
                self._usable = True
        return self._usable

    def _module(self):
        if not self.available():  # pragma: no cover - guarded by get_backend
            raise RuntimeError("cupy backend is not available")
        return self._cupy

    def namespace(self):
        cupy = self._module()
        probe = cupy.empty(0)
        resolver = getattr(probe, "__array_namespace__", None)
        if resolver is not None:
            return resolver()
        return cupy  # pragma: no cover - CuPy < 13

    def to_numpy(self, array) -> np.ndarray:
        return self._module().asnumpy(array)

    def scatter_add_rows(self, out, rows, block) -> None:
        import cupyx

        cupyx.scatter_add(out, rows, block)

    def synchronize(self) -> None:
        self._module().cuda.get_current_stream().synchronize()
