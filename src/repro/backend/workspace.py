"""Workspace pool: reusable tile/chunk temporaries and resident factor buffers.

The blocked dense kernel and the chunked sparse kernel allocate the same
small set of scratch shapes over and over — a gathered-factor block, a
contribution block, a matricized tile, a Khatri-Rao row block — once per
chunk, thousands of chunks per ALS sweep, dozens of sweeps per run.  A
:class:`WorkspacePool` turns those allocations into checkouts from a
per-``(backend, shape, dtype)`` arena: the first borrow of a shape allocates
(``workspace.miss``), every later borrow reuses a released buffer
(``workspace.hit``), and buffers whose shape has gone cold are dropped when
the pooled free words exceed the capacity (``workspace.evict``) — oldest
released first, so steady-state hot shapes survive exactly like the einsum
path cache's LRU.  The pool is thread-safe: chunk tasks running on the
shared executor of :mod:`repro.backend.parallel` borrow and release
concurrently under one lock (the lock guards free-list bookkeeping only,
never the arithmetic on borrowed buffers, which each task owns exclusively).

:class:`ResidentFactors` is the pool's cross-sweep companion — the
"device-resident factors" remainder of ROADMAP item 2.  The dimension-tree
engine keeps its cached *partials* backend-native across sweeps, but it used
to re-upload every *factor matrix* on every contraction.  A
:class:`ResidentFactors` mirror holds one backend-native copy per mode and
re-converts only when the host array is actually replaced (detected by
identity, the same discipline :class:`repro.core.dimtree.FactorGate` uses):
during one ALS sweep each factor is consumed by ``N - 1`` mode updates but
replaced once, so most lookups are hits (``workspace.factor.hit`` /
``workspace.factor.miss``).  On the NumPy backend the conversion is free and
the mirror only contributes counters; on a device backend every hit is one
host-to-device transfer saved.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import contextmanager
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.backend.base import Backend, get_backend
from repro.exceptions import ParameterError
from repro.observe.instrument import inc as observe_inc, observe_value

__all__ = [
    "DEFAULT_WORKSPACE_CAPACITY_WORDS",
    "WorkspacePool",
    "ResidentFactors",
    "default_pool",
    "reset_default_pool",
]

#: Free-list capacity of the default pool, in words: 2^22 words = 32 MiB of
#: float64 — a few times the kernels' fast-memory chunk budget, so every
#: scratch shape of a steady-state ALS run stays pooled while a burst of
#: one-off shapes (ragged edge tiles of a cold problem) gets shed.
DEFAULT_WORKSPACE_CAPACITY_WORDS = 1 << 22


def _words(shape: Tuple[int, ...]) -> int:
    total = 1
    for dim in shape:
        total *= int(dim)
    return total


class WorkspacePool:
    """Per-``(backend, shape, dtype)`` arena of reusable scratch buffers."""

    def __init__(self, capacity_words: int = DEFAULT_WORKSPACE_CAPACITY_WORDS) -> None:
        if int(capacity_words) < 1:
            raise ParameterError("capacity_words must be positive")
        self.capacity_words = int(capacity_words)
        #: key -> free buffers of that key; the OrderedDict order over keys is
        #: release recency (oldest first), the eviction order.
        self._free: "OrderedDict[Tuple[str, Tuple[int, ...], str], List]" = OrderedDict()
        #: id(buffer) -> key for buffers currently checked out.
        self._borrowed: Dict[int, Tuple[str, Tuple[int, ...], str]] = {}
        self._lock = threading.Lock()
        self._free_words = 0
        self._borrowed_words = 0
        self.high_water_words = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- introspection -------------------------------------------------------
    @property
    def pooled_words(self) -> int:
        """Words currently held in free lists (bounded by ``capacity_words``)."""
        return self._free_words

    @property
    def outstanding_words(self) -> int:
        """Words currently checked out to callers."""
        return self._borrowed_words

    # -- borrow / release ----------------------------------------------------
    def borrow(
        self,
        shape: Sequence[int],
        dtype=np.float64,
        *,
        backend: Union[None, str, Backend] = None,
        zero: bool = False,
    ):
        """Check out a buffer of ``shape``/``dtype`` on ``backend``.

        Reused buffers carry stale contents unless ``zero=True``; callers
        that overwrite every element (``np.matmul(..., out=...)``,
        ``np.copyto``) should leave ``zero`` off.
        """
        exec_backend = get_backend(backend)
        shape = tuple(int(dim) for dim in shape)
        dtype_name = str(np.dtype(dtype))
        key = (exec_backend.name, shape, dtype_name)
        words = _words(shape)
        with self._lock:
            free_list = self._free.get(key)
            if free_list:
                buffer = free_list.pop()
                if not free_list:
                    del self._free[key]
                self._free_words -= words
                self.hits += 1
                hit = True
            else:
                buffer = None
                self.misses += 1
                hit = False
            self._borrowed_words += words
            total = self._free_words + self._borrowed_words
            new_high_water = total > self.high_water_words
            if new_high_water:
                self.high_water_words = total
        observe_inc("workspace.hit" if hit else "workspace.miss")
        if new_high_water:
            observe_value("workspace.high_water_words", float(self.high_water_words))
        if buffer is None:
            buffer = exec_backend.zeros(shape, dtype=np.dtype(dtype_name))
        elif zero:
            buffer[...] = 0
        with self._lock:
            self._borrowed[id(buffer)] = key
        return buffer

    def release(self, buffer) -> None:
        """Return a borrowed buffer to its free list (evicting if over capacity)."""
        evicted = 0
        with self._lock:
            key = self._borrowed.pop(id(buffer), None)
            if key is None:
                raise ParameterError("release of a buffer this pool did not lend")
            words = _words(key[1])
            self._borrowed_words -= words
            self._free.setdefault(key, []).append(buffer)
            self._free.move_to_end(key)
            self._free_words += words
            # Shed the oldest-released shapes until the free arena fits.
            while self._free_words > self.capacity_words and self._free:
                old_key, old_list = next(iter(self._free.items()))
                old_list.pop(0)
                if not old_list:
                    del self._free[old_key]
                self._free_words -= _words(old_key[1])
                self.evictions += 1
                evicted += 1
        if evicted:
            observe_inc("workspace.evict", evicted)

    @contextmanager
    def lease(
        self,
        shape: Sequence[int],
        dtype=np.float64,
        *,
        backend: Union[None, str, Backend] = None,
        zero: bool = False,
    ):
        """Context-managed :meth:`borrow` — released on exit, even on error."""
        buffer = self.borrow(shape, dtype, backend=backend, zero=zero)
        try:
            yield buffer
        finally:
            self.release(buffer)


class ResidentFactors:
    """Backend-native mirrors of a factor list, refreshed on identity change.

    One slot per mode: :meth:`native` converts the host factor on first sight
    or whenever the host array object is replaced (``workspace.factor.miss``)
    and serves the cached native array otherwise (``workspace.factor.hit``).
    In-place mutations are invisible to the identity check — exactly the
    contract :class:`~repro.core.dimtree.FactorGate` already imposes on the
    ALS drivers, which always rebind factor slots to fresh arrays.
    """

    def __init__(self, n_modes: int, backend: Union[None, str, Backend] = None) -> None:
        if int(n_modes) < 1:
            raise ParameterError("n_modes must be positive")
        self._backend = get_backend(backend)
        self._hosts: List[Optional[np.ndarray]] = [None] * int(n_modes)
        self._natives: List[Optional[object]] = [None] * int(n_modes)
        self.hits = 0
        self.misses = 0

    @property
    def backend(self) -> Backend:
        return self._backend

    def native(self, mode: int, host: np.ndarray):
        """The backend-native array for ``host``, uploaded at most once per replacement."""
        if host is None:
            raise ParameterError("cannot make a None factor resident")
        if not 0 <= int(mode) < len(self._hosts):
            raise ParameterError(
                f"mode {mode} out of range for {len(self._hosts)} resident slots"
            )
        mode = int(mode)
        if self._hosts[mode] is host:
            self.hits += 1
            observe_inc("workspace.factor.hit")
        else:
            self.misses += 1
            observe_inc("workspace.factor.miss")
            self._natives[mode] = self._backend.asarray(np.asarray(host))
            self._hosts[mode] = host
        return self._natives[mode]

    def invalidate(self, mode: Optional[int] = None) -> None:
        """Drop one slot's mirror (or all of them) — next lookup re-uploads."""
        if mode is None:
            for k in range(len(self._hosts)):
                self._hosts[k] = None
                self._natives[k] = None
            return
        if not 0 <= int(mode) < len(self._hosts):
            raise ParameterError(
                f"mode {mode} out of range for {len(self._hosts)} resident slots"
            )
        self._hosts[int(mode)] = None
        self._natives[int(mode)] = None


#: Process-wide default pool, shared by every kernel call that does not pass
#: its own.  Chunk scratch shapes repeat across kernels, sweeps, and whole
#: ALS runs, so one arena serves them all; tests swap it out via
#: :func:`reset_default_pool`.
_DEFAULT_POOL = WorkspacePool()
_DEFAULT_POOL_LOCK = threading.Lock()


def default_pool() -> WorkspacePool:
    """The process-wide :class:`WorkspacePool` kernels fall back to."""
    return _DEFAULT_POOL


def reset_default_pool(
    capacity_words: int = DEFAULT_WORKSPACE_CAPACITY_WORDS,
) -> WorkspacePool:
    """Replace the default pool with a fresh one (test isolation hook)."""
    global _DEFAULT_POOL
    with _DEFAULT_POOL_LOCK:
        _DEFAULT_POOL = WorkspacePool(capacity_words)
        return _DEFAULT_POOL
