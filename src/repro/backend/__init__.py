"""Multi-backend execution layer for the MTTKRP kernels.

One registry of named :class:`Backend` instances — NumPy always, Numba and
CuPy when importable — resolved by :func:`get_backend` and threaded through
:func:`repro.core.kernels.mttkrp`, the sparse chunked kernel, the
dimension-tree engines, and both CP-ALS drivers via their ``backend=``
parameter.  Kernel registry names stay backend-agnostic: ``kernel="einsum"``
means the same contraction on whichever backend is selected.
"""

from repro.backend.base import (
    Backend,
    DEFAULT_BACKEND_NAME,
    available_backend_names,
    backend_names,
    get_backend,
    register_backend,
)
from repro.backend.cupy_backend import CupyBackend
from repro.backend.numba_backend import NumbaBackend
from repro.backend.numpy_backend import NumpyBackend

# Registration order is the preference order reports/benchmarks display.
register_backend(NumpyBackend())
register_backend(NumbaBackend())
register_backend(CupyBackend())

__all__ = [
    "Backend",
    "DEFAULT_BACKEND_NAME",
    "NumpyBackend",
    "NumbaBackend",
    "CupyBackend",
    "available_backend_names",
    "backend_names",
    "get_backend",
    "register_backend",
]
