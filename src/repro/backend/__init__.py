"""Multi-backend execution layer for the MTTKRP kernels.

One registry of named :class:`Backend` instances — NumPy always, Numba and
CuPy when importable — resolved by :func:`get_backend` and threaded through
:func:`repro.core.kernels.mttkrp`, the blocked dense and chunked sparse
kernels, the dimension-tree engines, and both CP-ALS drivers via their
``backend=`` parameter.  Kernel registry names stay backend-agnostic:
``kernel="einsum"`` means the same contraction on whichever backend is
selected.

Two execution services live beside the registry: the thread-parallel chunk
executor of :mod:`repro.backend.parallel` (deterministic fixed-order
reduction, thread count from ``REPRO_THREADS``) and the workspace pool of
:mod:`repro.backend.workspace` (reusable chunk/tile temporaries and
backend-resident factor mirrors shared across chunks and ALS sweeps).
"""

from repro.backend.base import (
    Backend,
    DEFAULT_BACKEND_NAME,
    available_backend_names,
    backend_names,
    get_backend,
    register_backend,
)
from repro.backend.cupy_backend import CupyBackend
from repro.backend.numba_backend import NumbaBackend
from repro.backend.numpy_backend import NumpyBackend
from repro.backend.parallel import (
    MAX_THREADS,
    THREADS_ENV_VAR,
    effective_cpu_count,
    ordered_reduce,
    parallel_map,
    resolve_threads,
)
from repro.backend.workspace import (
    DEFAULT_WORKSPACE_CAPACITY_WORDS,
    ResidentFactors,
    WorkspacePool,
    default_pool,
    reset_default_pool,
)

# Registration order is the preference order reports/benchmarks display.
register_backend(NumpyBackend())
register_backend(NumbaBackend())
register_backend(CupyBackend())

__all__ = [
    "Backend",
    "DEFAULT_BACKEND_NAME",
    "NumpyBackend",
    "NumbaBackend",
    "CupyBackend",
    "available_backend_names",
    "backend_names",
    "get_backend",
    "register_backend",
    "THREADS_ENV_VAR",
    "MAX_THREADS",
    "effective_cpu_count",
    "resolve_threads",
    "parallel_map",
    "ordered_reduce",
    "DEFAULT_WORKSPACE_CAPACITY_WORDS",
    "WorkspacePool",
    "ResidentFactors",
    "default_pool",
    "reset_default_pool",
]
