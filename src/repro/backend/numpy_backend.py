"""The default NumPy backend (always available)."""

from __future__ import annotations

import numpy as np

from repro.backend.base import Backend


def _resolve_numpy_namespace():
    """NumPy's array-API namespace (standard entry point on >= 2.0)."""
    probe = np.empty(0)
    resolver = getattr(probe, "__array_namespace__", None)
    if resolver is not None:
        return resolver()
    return np  # pragma: no cover - NumPy < 2.0


class NumpyBackend(Backend):
    """Host execution on NumPy — the reference every other backend must match."""

    name = "numpy"

    def __init__(self) -> None:
        self._xp = _resolve_numpy_namespace()

    def available(self) -> bool:
        return True

    def namespace(self):
        return self._xp

    def to_numpy(self, array) -> np.ndarray:
        return np.asarray(array)

    def scatter_add_rows(self, out, rows, block) -> None:
        # One bincount per column: C-speed duplicate-summing accumulation,
        # far faster than buffered ``np.add.at`` on the same rows.  The
        # column count is the kernel's rchunk, so the loop stays short.
        minlength = out.shape[0]
        for j in range(block.shape[1]):
            out[:, j] += np.bincount(rows, weights=block[:, j], minlength=minlength)
